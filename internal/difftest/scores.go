package difftest

import (
	"embed"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
)

// GoldenSeed pins the corpus the regression gate is blessed against.
const GoldenSeed = 1

// Patterns lists the nine anti-patterns in order.
var Patterns = []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9"}

// PatternScore is the confusion summary for one anti-pattern. A planned bug
// counts as a true positive when at least one report matches its
// (function, pattern) key; a report key matching no planned bug is a false
// positive (the seeded baits, mirroring the paper's 5 FPs).
type PatternScore struct {
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// Scores is the ground-truth quality ledger committed as golden/scores.json
// (and emitted as BENCH_quality.json by scripts/difftest.sh).
type Scores struct {
	Seed          int64                   `json:"seed"`
	Planned       int                     `json:"planned_bugs"`
	Reports       int                     `json:"reports"`
	Confirmed     int                     `json:"confirmed"`
	BaitsSeeded   int                     `json:"baits_seeded"`
	BaitsReported int                     `json:"baits_reported"`
	ByPattern     map[string]PatternScore `json:"by_pattern"`
	Overall       PatternScore            `json:"overall"`
}

func finishScore(s *PatternScore) {
	if s.TP+s.FP > 0 {
		s.Precision = float64(s.TP) / float64(s.TP+s.FP)
	}
	if s.TP+s.FN > 0 {
		s.Recall = float64(s.TP) / float64(s.TP+s.FN)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
}

// ComputeScores evaluates a report list against the corpus plan. Matching
// follows internal/study's model: reports and planned bugs join on the
// (function, pattern) key; multiple reports on one key collapse to one
// detection.
func ComputeScores(c *corpus.Corpus, seed int64, reports []core.Report) Scores {
	type key struct{ fn, pattern string }
	reported := map[key]bool{}
	confirmed := 0
	for _, r := range reports {
		reported[key{r.Function, string(r.Pattern)}] = true
		if r.Confirmed {
			confirmed++
		}
	}
	matched := map[key]bool{}

	sc := Scores{
		Seed: seed, Planned: len(c.Planned), Reports: len(reports),
		Confirmed: confirmed, BaitsSeeded: len(c.Baits),
		ByPattern: map[string]PatternScore{},
	}
	per := map[string]*PatternScore{}
	for _, p := range Patterns {
		per[p] = &PatternScore{}
	}

	for _, pb := range c.Planned {
		k := key{pb.Function, string(pb.Pattern)}
		s := per[string(pb.Pattern)]
		if reported[k] {
			matched[k] = true
			s.TP++
			sc.Overall.TP++
		} else {
			s.FN++
			sc.Overall.FN++
		}
	}
	baited := map[string]bool{}
	for _, b := range c.Baits {
		baited[b.Function] = true
	}
	baitHit := map[string]bool{}
	for k := range reported {
		if matched[k] {
			continue
		}
		if s := per[k.pattern]; s != nil {
			s.FP++
		}
		sc.Overall.FP++
		if baited[k.fn] {
			baitHit[k.fn] = true
		}
	}
	sc.BaitsReported = len(baitHit)

	for p, s := range per {
		finishScore(s)
		sc.ByPattern[p] = *s
	}
	finishScore(&sc.Overall)
	return sc
}

// GoldenGate scores a report list against the golden corpus and errors
// unless it reproduces the blessed confusion matrix exactly: every planned
// bug detected and exactly the seeded baits as false positives. Matching
// needs only the (function, pattern) key, so callers that recovered reports
// from a serialized form — refcheckd's JSON output crossing the wire, say —
// can prove full checker fidelity end to end.
func GoldenGate(reports []core.Report) error {
	c := goldenCorpus()
	sc := ComputeScores(c, GoldenSeed, reports)
	switch {
	case sc.Overall.FN != 0 || sc.Overall.TP != sc.Planned:
		return fmt.Errorf("golden gate: %d/%d planned bugs detected (%d missed)",
			sc.Overall.TP, sc.Planned, sc.Overall.FN)
	case sc.Overall.FP != sc.BaitsSeeded || sc.BaitsReported != sc.BaitsSeeded:
		return fmt.Errorf("golden gate: FP=%d with %d baits reported, want exactly the %d seeded baits",
			sc.Overall.FP, sc.BaitsReported, sc.BaitsSeeded)
	}
	return nil
}

// RenderReports renders one sorted report line per finding of the given
// pattern; these are the per-checker golden files.
func RenderReports(reports []core.Report, pattern string) string {
	var lines []string
	for _, r := range reports {
		if string(r.Pattern) != pattern {
			continue
		}
		lines = append(lines, fmt.Sprintf("%s | confirmed=%v", r.String(), r.Confirmed))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// goldenCorpus regenerates the pinned corpus the gate is blessed against.
func goldenCorpus() *corpus.Corpus {
	return corpus.Generate(corpus.Spec{Seed: GoldenSeed})
}

// ComputeGolden analyzes the golden corpus and returns the artifact set the
// gate compares: one reports_PN.txt render per checker plus scores.json.
func ComputeGolden() (map[string]string, Scores) {
	return ComputeGoldenTrace(obs.Nop())
}

// ComputeGoldenTrace is ComputeGolden with the analysis recorded into tr —
// the artifacts are byte-identical with observability on or off, which is
// exactly what `refcheck -selftest -trace-out` proves.
func ComputeGoldenTrace(tr *obs.Trace) (map[string]string, Scores) {
	c := goldenCorpus()
	ss := FromCorpus(c)
	run := RunTrace(ss, 0, nil, tr)
	sc := ComputeScores(c, GoldenSeed, run.Reports)

	files := map[string]string{}
	for _, p := range Patterns {
		files["reports_"+p+".txt"] = RenderReports(run.Reports, p)
	}
	js, _ := json.MarshalIndent(sc, "", "  ")
	files["scores.json"] = string(js) + "\n"
	return files, sc
}

//go:embed golden
var goldenFS embed.FS

// Selftest recomputes the golden artifacts and diffs them against the copies
// embedded at build time, so a released binary can prove its checkers still
// reproduce the blessed results (`refcheck -selftest`). With jsonOut the
// recomputed scores are printed as JSON (the BENCH_quality.json payload);
// otherwise a per-pattern table is printed. Returns an error on any drift.
func Selftest(w io.Writer, jsonOut bool) error {
	return SelftestTrace(w, jsonOut, obs.Nop())
}

// SelftestTrace is Selftest with the golden re-analysis recorded into tr,
// so the gate can simultaneously prove the artifacts and exercise the
// exporters against a full-pipeline trace.
func SelftestTrace(w io.Writer, jsonOut bool, tr *obs.Trace) error {
	got, sc := ComputeGoldenTrace(tr)
	var drift []string
	for name, want := range readGolden() {
		if got[name] != want {
			drift = append(drift, fmt.Sprintf("%s: %s", name, firstDiff(want, got[name])))
		}
	}
	sort.Strings(drift)

	if jsonOut {
		fmt.Fprint(w, got["scores.json"])
	} else {
		fmt.Fprintf(w, "selftest: corpus seed %d, %d planned bugs, %d reports (%d confirmed), %d/%d baits reported\n",
			sc.Seed, sc.Planned, sc.Reports, sc.Confirmed, sc.BaitsReported, sc.BaitsSeeded)
		for _, p := range Patterns {
			s := sc.ByPattern[p]
			fmt.Fprintf(w, "  %s: TP=%d FP=%d FN=%d precision=%.3f recall=%.3f f1=%.3f\n",
				p, s.TP, s.FP, s.FN, s.Precision, s.Recall, s.F1)
		}
		fmt.Fprintf(w, "  overall: TP=%d FP=%d FN=%d precision=%.3f recall=%.3f f1=%.3f\n",
			sc.Overall.TP, sc.Overall.FP, sc.Overall.FN,
			sc.Overall.Precision, sc.Overall.Recall, sc.Overall.F1)
	}
	if len(drift) > 0 {
		return fmt.Errorf("selftest: %d golden artifact(s) drifted:\n%s",
			len(drift), strings.Join(drift, "\n"))
	}
	return nil
}

// readGolden loads the embedded golden artifacts as name → content.
func readGolden() map[string]string {
	out := map[string]string{}
	entries, err := goldenFS.ReadDir("golden")
	if err != nil {
		return out
	}
	for _, e := range entries {
		data, err := goldenFS.ReadFile("golden/" + e.Name())
		if err == nil {
			out[e.Name()] = string(data)
		}
	}
	return out
}
