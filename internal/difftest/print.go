package difftest

import (
	"strings"

	"repro/internal/clex"
)

// PrintTokens renders a token stream back to lexable source text: newline
// tokens become line breaks and every other adjacent pair is separated by a
// single space, so no two tokens can merge into one on re-lexing (spellings
// themselves are emitted verbatim). With Config{KeepNewlines: true} input
// this preserves the line structure the preprocessor's directive handling
// depends on.
func PrintTokens(toks []clex.Token) string {
	var b strings.Builder
	atLineStart := true
	for _, t := range toks {
		if t.Kind == clex.Newline {
			b.WriteByte('\n')
			atLineStart = true
			continue
		}
		if !atLineStart {
			b.WriteByte(' ')
		}
		if t.Text != "" {
			b.WriteString(t.Text)
		} else {
			b.WriteString(t.Kind.String())
		}
		atLineStart = false
	}
	return b.String()
}
