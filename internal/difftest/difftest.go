// Package difftest is the correctness-tooling layer for the checker
// pipeline: a differential/metamorphic harness, native fuzz targets, and the
// ground-truth regression gate.
//
// It provides three oracles the repo's other tests cannot express:
//
//  1. Differential: the same input is analyzed across the full
//     {workers 1, N} × {no cache, cold, L1-warm, disk-warm,
//     one-file-invalidated} matrix and every configuration must render
//     byte-identically (Matrix).
//  2. Metamorphic: semantics-preserving source transforms (comments,
//     whitespace, reordering, include restructuring, identifier renaming)
//     must leave the report signatures invariant up to relocation, while
//     bug-injecting/-removing transforms must change exactly the predicted
//     signatures (see transform.go).
//  3. Ground truth: per-checker golden reports and precision/recall/F1
//     scores against internal/corpus's planned bugs are committed to the
//     repo and re-derived on every run (see scores.go; rebless with
//     `go test ./internal/difftest -update`).
package difftest

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysiscache"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/obs"
)

// SourceSet is one analyzable input: sources plus resolvable headers.
// Transforms consume and produce SourceSets.
type SourceSet struct {
	Sources []cpg.Source
	Headers map[string]string
}

// Clone deep-copies the set so transforms never alias the original backing
// slices/maps.
func (ss SourceSet) Clone() SourceSet {
	out := SourceSet{
		Sources: append([]cpg.Source(nil), ss.Sources...),
		Headers: make(map[string]string, len(ss.Headers)),
	}
	for k, v := range ss.Headers {
		out.Headers[k] = v
	}
	return out
}

// FromCorpus adapts a generated corpus to a SourceSet.
func FromCorpus(c *corpus.Corpus) SourceSet {
	ss := SourceSet{Headers: map[string]string{}}
	for _, f := range c.Files {
		ss.Sources = append(ss.Sources, cpg.Source{Path: f.Path, Content: f.Content})
	}
	for p, s := range c.Headers {
		ss.Headers[p] = s
	}
	return ss
}

// Run analyzes the set once with confirmation on and a fresh trace attached
// (so matrix checks can interrogate cache behavior through run metrics). A
// nil cache disables caching.
func Run(ss SourceSet, workers int, cache *analysiscache.Cache) *core.Run {
	return RunTrace(ss, workers, cache, obs.New("difftest"))
}

// RunTrace is Run recording into a caller-supplied trace (obs.Nop()
// disables observability; Run.Metric then reads 0 for everything).
func RunTrace(ss SourceSet, workers int, cache *analysiscache.Cache, tr *obs.Trace) *core.Run {
	run, err := core.Analyze(context.Background(), core.Request{
		Sources: ss.Sources,
		Headers: ss.Headers,
		Options: core.Options{Workers: workers, Confirm: true, Cache: cache},
		Trace:   tr,
	})
	if err != nil {
		// Background context and a validated (nil) checker selection: an
		// error here is a harness bug, not an input property.
		panic("difftest: " + err.Error())
	}
	tr.Done()
	return run
}

// RenderRun canonicalizes everything a run reports — rendered diagnostics,
// suggestions, confirmation verdicts, and the full witness event stream — so
// two runs can be compared byte for byte. reflect.DeepEqual is deliberately
// not used: cached reports legitimately drop witness CFG block pointers,
// which no consumer reads.
func RenderRun(run *core.Run) string {
	var b strings.Builder
	fmt.Fprintf(&b, "summary %+v\n", run.Summary)
	for _, r := range run.Reports {
		fmt.Fprintf(&b, "%s | confirmed=%v | suggestion=%q\n", r.String(), r.Confirmed, r.Suggestion)
		for _, ev := range r.Witness {
			fmt.Fprintf(&b, "  ev %v obj=%q api=%q assign=%q esc=%q pos=%s macro=%q",
				ev.Op, ev.Obj, ev.API, ev.AssignTarget, ev.EscapesVia, ev.Pos, ev.FromMacro)
			if ev.Info != nil {
				fmt.Fprintf(&b, " info=%+v", *ev.Info)
			}
			fmt.Fprintf(&b, " nnT=%v nnF=%v\n", ev.NonNullTrue, ev.NonNullFalse)
		}
	}
	return b.String()
}

// matrixWorkers is the parallel worker count the matrix cross-checks against
// the sequential run.
const matrixWorkers = 8

// Matrix runs the pipeline over the set across the full {workers 1, N} ×
// {no cache, cold, L1-warm, disk-warm, one-file-invalidated} matrix,
// verifies every configuration renders byte-identically to the sequential
// uncached baseline (the invalidated runs against an uncached baseline of
// the edited set), and returns the baseline run. The cache states exercise
// every tier of the cache: a second run on the same handle must be served
// out of the in-memory L1 tier, a run on a reopened handle must be served
// from the disk packs into a cold L1, and editing one file must miss the
// unit entry while the untouched files still hit the front-end cache.
// Because every run carries a trace, the matrix doubles as the
// observability determinism oracle: for a given cache state, the span tree
// and every counter must be independent of the worker count. Cache
// directories are private temp dirs, removed before returning.
func Matrix(ss SourceSet) (*core.Run, error) {
	base := Run(ss, 1, nil)
	want := RenderRun(base)

	check := func(name string, run *core.Run) error {
		if got := RenderRun(run); got != want {
			return fmt.Errorf("difftest: %s differs from sequential uncached baseline:\n%s",
				name, firstDiff(want, got))
		}
		return nil
	}

	noCacheN := Run(ss, matrixWorkers, nil)
	if err := check(fmt.Sprintf("workers=%d no-cache", matrixWorkers), noCacheN); err != nil {
		return nil, err
	}
	if err := sameObs("no-cache", base, noCacheN); err != nil {
		return nil, err
	}

	// The invalidation leg edits one source file, which must change the unit
	// key; its runs compare against a fresh uncached baseline of the edited
	// set rather than `want`.
	edited := ss.Clone()
	editedWant := ""
	if len(edited.Sources) > 0 {
		edited.Sources[0].Content += "\n/* difftest: invalidation probe */\n"
		editedWant = RenderRun(Run(edited, 1, nil))
	}

	// Both worker counts see every cache state: each order pair runs one
	// state at workers=order[0] and the next at order[1] on its own private
	// directory, so across the two pairs each state executes at both worker
	// counts against identical cache contents — the same-cache-state run
	// pairs the obs oracle compares.
	runs := map[string]*core.Run{}
	for _, order := range [][2]int{{1, matrixWorkers}, {matrixWorkers, 1}} {
		dir, err := os.MkdirTemp("", "difftest-cache-")
		if err != nil {
			return nil, err
		}
		cache, err := analysiscache.Open(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		cold := Run(ss, order[0], cache)
		l1warm := Run(ss, order[1], cache)
		if cold.Metric("cache.unit.hit") != 0 {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("difftest: cold run (workers=%d) claims a unit cache hit", order[0])
		}
		if l1warm.Metric("cache.unit.hit") != 1 || l1warm.Metric("cache.l1.hit") == 0 {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("difftest: second run on the same handle (workers=%d) was not served from L1: unit.hit=%d l1.hit=%d",
				order[1], l1warm.Metric("cache.unit.hit"), l1warm.Metric("cache.l1.hit"))
		}

		// A reopened handle starts with an empty L1, so a hit here proves the
		// batched packs round-trip through disk.
		reopened, err := analysiscache.Open(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		diskwarm := Run(ss, order[0], reopened)
		if diskwarm.Metric("cache.unit.hit") != 1 || diskwarm.Metric("cache.l1.hit") != 0 {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("difftest: reopened-handle run (workers=%d) not served from disk: unit.hit=%d l1.hit=%d",
				order[0], diskwarm.Metric("cache.unit.hit"), diskwarm.Metric("cache.l1.hit"))
		}

		var inval *core.Run
		if len(edited.Sources) > 0 {
			invalCache, err := analysiscache.Open(dir)
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			inval = Run(edited, order[1], invalCache)
			if inval.Metric("cache.unit.hit") != 0 {
				os.RemoveAll(dir)
				return nil, fmt.Errorf("difftest: run with an edited file (workers=%d) claims a unit cache hit", order[1])
			}
			if wantHits := int64(len(ss.Sources) - 1); inval.Metric("frontend.cache.hit") != wantHits {
				os.RemoveAll(dir)
				return nil, fmt.Errorf("difftest: edited-file run (workers=%d) should front-end-hit the %d untouched files, hit %d",
					order[1], wantHits, inval.Metric("frontend.cache.hit"))
			}
		}
		os.RemoveAll(dir)

		if err := check(fmt.Sprintf("workers=%d cold-cache", order[0]), cold); err != nil {
			return nil, err
		}
		if err := check(fmt.Sprintf("workers=%d l1-warm", order[1]), l1warm); err != nil {
			return nil, err
		}
		if err := check(fmt.Sprintf("workers=%d disk-warm", order[0]), diskwarm); err != nil {
			return nil, err
		}
		if inval != nil {
			if got := RenderRun(inval); got != editedWant {
				return nil, fmt.Errorf("difftest: workers=%d one-file-invalidated differs from uncached baseline of the edited set:\n%s",
					order[1], firstDiff(editedWant, got))
			}
			runs[fmt.Sprintf("inval-%d", order[1])] = inval
		}
		runs[fmt.Sprintf("cold-%d", order[0])] = cold
		runs[fmt.Sprintf("l1warm-%d", order[1])] = l1warm
		runs[fmt.Sprintf("diskwarm-%d", order[0])] = diskwarm
	}
	for _, state := range []string{"cold", "l1warm", "diskwarm", "inval"} {
		a, b := runs[state+"-1"], runs[fmt.Sprintf("%s-%d", state, matrixWorkers)]
		if a == nil || b == nil {
			continue // inval legs are skipped for empty source sets
		}
		if err := sameObs(state, a, b); err != nil {
			return nil, err
		}
	}
	return base, nil
}

// sameObs verifies two same-cache-state runs produced an identical span tree
// and identical counters — the per-worker span/counter merge must hide the
// worker count entirely. Timings (gauges, histograms) are exempt: wall time
// legitimately differs.
func sameObs(state string, a, b *core.Run) error {
	if ta, tb := obs.Tree(a.Trace), obs.Tree(b.Trace); ta != tb {
		return fmt.Errorf("difftest: %s span tree depends on worker count:\n%s", state, firstDiff(ta, tb))
	}
	ca, cb := a.Trace.Reg().Counters(), b.Trace.Reg().Counters()
	for k, v := range ca {
		if cb[k] != v {
			return fmt.Errorf("difftest: %s counter %s depends on worker count: %d vs %d", state, k, v, cb[k])
		}
	}
	for k, v := range cb {
		if _, ok := ca[k]; !ok {
			return fmt.Errorf("difftest: %s counter %s only present in one run (= %d)", state, k, v)
		}
	}
	return nil
}

// firstDiff returns a short context snippet around the first differing line
// of two renders, keeping matrix failures readable.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		w, g := "", ""
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w, g)
		}
	}
	return "(renders equal?)"
}

// Sig is a relocation-invariant report signature: everything that identifies
// a finding except source coordinates. Semantics-preserving transforms move
// code around (shifting File/Pos) but must not change the multiset of Sigs.
type Sig struct {
	Pattern   string
	Impact    string
	Function  string
	Object    string
	API       string
	Confirmed bool
}

func (s Sig) String() string {
	return fmt.Sprintf("[%s/%s] %s obj=%q api=%s confirmed=%v",
		s.Pattern, s.Impact, s.Function, s.Object, s.API, s.Confirmed)
}

// SigOf extracts the signature of one report.
func SigOf(r core.Report) Sig {
	return Sig{
		Pattern: string(r.Pattern), Impact: r.Impact.String(),
		Function: r.Function, Object: r.Object, API: r.API,
		Confirmed: r.Confirmed,
	}
}

// SigsOf extracts sorted signatures for a whole report list.
func SigsOf(reports []core.Report) []Sig {
	sigs := make([]Sig, len(reports))
	for i, r := range reports {
		sigs[i] = SigOf(r)
	}
	SortSigs(sigs)
	return sigs
}

// SortSigs orders signatures deterministically.
func SortSigs(sigs []Sig) {
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].String() < sigs[j].String() })
}

// DiffSigs compares two signature multisets, returning the elements present
// only in a and only in b.
func DiffSigs(a, b []Sig) (onlyA, onlyB []Sig) {
	count := map[Sig]int{}
	for _, s := range a {
		count[s]++
	}
	for _, s := range b {
		count[s]--
	}
	for s, n := range count {
		for ; n > 0; n-- {
			onlyA = append(onlyA, s)
		}
		for ; n < 0; n++ {
			onlyB = append(onlyB, s)
		}
	}
	SortSigs(onlyA)
	SortSigs(onlyB)
	return onlyA, onlyB
}
