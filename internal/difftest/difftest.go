// Package difftest is the correctness-tooling layer for the checker
// pipeline: a differential/metamorphic harness, native fuzz targets, and the
// ground-truth regression gate.
//
// It provides three oracles the repo's other tests cannot express:
//
//  1. Differential: the same input is analyzed across the full
//     {workers 1, N} × {no cache, cold cache, warm cache} matrix and every
//     configuration must render byte-identically (Matrix).
//  2. Metamorphic: semantics-preserving source transforms (comments,
//     whitespace, reordering, include restructuring, identifier renaming)
//     must leave the report signatures invariant up to relocation, while
//     bug-injecting/-removing transforms must change exactly the predicted
//     signatures (see transform.go).
//  3. Ground truth: per-checker golden reports and precision/recall/F1
//     scores against internal/corpus's planned bugs are committed to the
//     repo and re-derived on every run (see scores.go; rebless with
//     `go test ./internal/difftest -update`).
package difftest

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysiscache"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/obs"
)

// SourceSet is one analyzable input: sources plus resolvable headers.
// Transforms consume and produce SourceSets.
type SourceSet struct {
	Sources []cpg.Source
	Headers map[string]string
}

// Clone deep-copies the set so transforms never alias the original backing
// slices/maps.
func (ss SourceSet) Clone() SourceSet {
	out := SourceSet{
		Sources: append([]cpg.Source(nil), ss.Sources...),
		Headers: make(map[string]string, len(ss.Headers)),
	}
	for k, v := range ss.Headers {
		out.Headers[k] = v
	}
	return out
}

// FromCorpus adapts a generated corpus to a SourceSet.
func FromCorpus(c *corpus.Corpus) SourceSet {
	ss := SourceSet{Headers: map[string]string{}}
	for _, f := range c.Files {
		ss.Sources = append(ss.Sources, cpg.Source{Path: f.Path, Content: f.Content})
	}
	for p, s := range c.Headers {
		ss.Headers[p] = s
	}
	return ss
}

// Run analyzes the set once with confirmation on and a fresh trace attached
// (so matrix checks can interrogate cache behavior through run metrics). A
// nil cache disables caching.
func Run(ss SourceSet, workers int, cache *analysiscache.Cache) *core.Run {
	return RunTrace(ss, workers, cache, obs.New("difftest"))
}

// RunTrace is Run recording into a caller-supplied trace (obs.Nop()
// disables observability; Run.Metric then reads 0 for everything).
func RunTrace(ss SourceSet, workers int, cache *analysiscache.Cache, tr *obs.Trace) *core.Run {
	run, err := core.Analyze(context.Background(), core.Request{
		Sources: ss.Sources,
		Headers: ss.Headers,
		Options: core.Options{Workers: workers, Confirm: true, Cache: cache},
		Trace:   tr,
	})
	if err != nil {
		// Background context and a validated (nil) checker selection: an
		// error here is a harness bug, not an input property.
		panic("difftest: " + err.Error())
	}
	tr.Done()
	return run
}

// RenderRun canonicalizes everything a run reports — rendered diagnostics,
// suggestions, confirmation verdicts, and the full witness event stream — so
// two runs can be compared byte for byte. reflect.DeepEqual is deliberately
// not used: cached reports legitimately drop witness CFG block pointers,
// which no consumer reads.
func RenderRun(run *core.Run) string {
	var b strings.Builder
	fmt.Fprintf(&b, "summary %+v\n", run.Summary)
	for _, r := range run.Reports {
		fmt.Fprintf(&b, "%s | confirmed=%v | suggestion=%q\n", r.String(), r.Confirmed, r.Suggestion)
		for _, ev := range r.Witness {
			fmt.Fprintf(&b, "  ev %v obj=%q api=%q assign=%q esc=%q pos=%s macro=%q",
				ev.Op, ev.Obj, ev.API, ev.AssignTarget, ev.EscapesVia, ev.Pos, ev.FromMacro)
			if ev.Info != nil {
				fmt.Fprintf(&b, " info=%+v", *ev.Info)
			}
			fmt.Fprintf(&b, " nnT=%v nnF=%v\n", ev.NonNullTrue, ev.NonNullFalse)
		}
	}
	return b.String()
}

// matrixWorkers is the parallel worker count the matrix cross-checks against
// the sequential run.
const matrixWorkers = 8

// Matrix runs the pipeline over the set across the full {workers 1, N} ×
// {no cache, cold, warm} matrix, verifies every configuration renders
// byte-identically to the sequential uncached baseline (and that warm runs
// actually hit the unit cache), and returns the baseline run. Because every
// run carries a trace, the matrix doubles as the observability determinism
// oracle: for a given cache state, the span tree and every counter must be
// independent of the worker count. Cache directories are private temp dirs,
// removed before returning.
func Matrix(ss SourceSet) (*core.Run, error) {
	base := Run(ss, 1, nil)
	want := RenderRun(base)

	check := func(name string, run *core.Run) error {
		if got := RenderRun(run); got != want {
			return fmt.Errorf("difftest: %s differs from sequential uncached baseline:\n%s",
				name, firstDiff(want, got))
		}
		return nil
	}

	noCacheN := Run(ss, matrixWorkers, nil)
	if err := check(fmt.Sprintf("workers=%d no-cache", matrixWorkers), noCacheN); err != nil {
		return nil, err
	}
	if err := sameObs("no-cache", base, noCacheN); err != nil {
		return nil, err
	}

	// Both worker counts see both cache temperatures: cold with 1 then warm
	// with N on one directory, cold with N then warm with 1 on another. The
	// pairs run on separate empty directories, so cold-1/cold-N (and
	// warm-1/warm-N) are same-cache-state runs the obs oracle can compare.
	runs := map[string]*core.Run{}
	for _, order := range [][2]int{{1, matrixWorkers}, {matrixWorkers, 1}} {
		dir, err := os.MkdirTemp("", "difftest-cache-")
		if err != nil {
			return nil, err
		}
		cache, err := analysiscache.Open(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		cold := Run(ss, order[0], cache)
		warm := Run(ss, order[1], cache)
		os.RemoveAll(dir)
		if cold.Metric("cache.unit.hit") != 0 {
			return nil, fmt.Errorf("difftest: cold run (workers=%d) claims a unit cache hit", order[0])
		}
		if warm.Metric("cache.unit.hit") != 1 {
			return nil, fmt.Errorf("difftest: warm run (workers=%d) missed the unit cache", order[1])
		}
		if err := check(fmt.Sprintf("workers=%d cold-cache", order[0]), cold); err != nil {
			return nil, err
		}
		if err := check(fmt.Sprintf("workers=%d warm-cache", order[1]), warm); err != nil {
			return nil, err
		}
		runs[fmt.Sprintf("cold-%d", order[0])] = cold
		runs[fmt.Sprintf("warm-%d", order[1])] = warm
	}
	if err := sameObs("cold-cache", runs["cold-1"], runs[fmt.Sprintf("cold-%d", matrixWorkers)]); err != nil {
		return nil, err
	}
	if err := sameObs("warm-cache", runs["warm-1"], runs[fmt.Sprintf("warm-%d", matrixWorkers)]); err != nil {
		return nil, err
	}
	return base, nil
}

// sameObs verifies two same-cache-state runs produced an identical span tree
// and identical counters — the per-worker span/counter merge must hide the
// worker count entirely. Timings (gauges, histograms) are exempt: wall time
// legitimately differs.
func sameObs(state string, a, b *core.Run) error {
	if ta, tb := obs.Tree(a.Trace), obs.Tree(b.Trace); ta != tb {
		return fmt.Errorf("difftest: %s span tree depends on worker count:\n%s", state, firstDiff(ta, tb))
	}
	ca, cb := a.Trace.Reg().Counters(), b.Trace.Reg().Counters()
	for k, v := range ca {
		if cb[k] != v {
			return fmt.Errorf("difftest: %s counter %s depends on worker count: %d vs %d", state, k, v, cb[k])
		}
	}
	for k, v := range cb {
		if _, ok := ca[k]; !ok {
			return fmt.Errorf("difftest: %s counter %s only present in one run (= %d)", state, k, v)
		}
	}
	return nil
}

// firstDiff returns a short context snippet around the first differing line
// of two renders, keeping matrix failures readable.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		w, g := "", ""
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w, g)
		}
	}
	return "(renders equal?)"
}

// Sig is a relocation-invariant report signature: everything that identifies
// a finding except source coordinates. Semantics-preserving transforms move
// code around (shifting File/Pos) but must not change the multiset of Sigs.
type Sig struct {
	Pattern   string
	Impact    string
	Function  string
	Object    string
	API       string
	Confirmed bool
}

func (s Sig) String() string {
	return fmt.Sprintf("[%s/%s] %s obj=%q api=%s confirmed=%v",
		s.Pattern, s.Impact, s.Function, s.Object, s.API, s.Confirmed)
}

// SigOf extracts the signature of one report.
func SigOf(r core.Report) Sig {
	return Sig{
		Pattern: string(r.Pattern), Impact: r.Impact.String(),
		Function: r.Function, Object: r.Object, API: r.API,
		Confirmed: r.Confirmed,
	}
}

// SigsOf extracts sorted signatures for a whole report list.
func SigsOf(reports []core.Report) []Sig {
	sigs := make([]Sig, len(reports))
	for i, r := range reports {
		sigs[i] = SigOf(r)
	}
	SortSigs(sigs)
	return sigs
}

// SortSigs orders signatures deterministically.
func SortSigs(sigs []Sig) {
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].String() < sigs[j].String() })
}

// DiffSigs compares two signature multisets, returning the elements present
// only in a and only in b.
func DiffSigs(a, b []Sig) (onlyA, onlyB []Sig) {
	count := map[Sig]int{}
	for _, s := range a {
		count[s]++
	}
	for _, s := range b {
		count[s]--
	}
	for s, n := range count {
		for ; n > 0; n-- {
			onlyA = append(onlyA, s)
		}
		for ; n < 0; n++ {
			onlyB = append(onlyB, s)
		}
	}
	SortSigs(onlyA)
	SortSigs(onlyB)
	return onlyA, onlyB
}
