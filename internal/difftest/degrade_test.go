package difftest

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysiscache"
)

// TestPipelineSurvivesCacheLoss opens a cache, warms it, then makes the
// cache directory unusable (replaced by a regular file — deterministic even
// when the tests run as root, where chmod is not enforced) and re-runs the
// pipeline through the same handle. The run must degrade to cache misses
// and still render byte-identically to the uncached baseline.
func TestPipelineSurvivesCacheLoss(t *testing.T) {
	_, ss := smallSet(t)
	want := RenderRun(Run(ss, 1, nil))

	dir := filepath.Join(t.TempDir(), "cache")
	cache, err := analysiscache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := Run(ss, 1, cache)
	if got := RenderRun(cold); got != want {
		t.Fatalf("cold cached run differs from baseline:\n%s", firstDiff(want, got))
	}
	warm := Run(ss, 1, cache)
	if warm.Metric("cache.unit.hit") != 1 {
		t.Fatal("warm run should hit the unit cache")
	}

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	degraded := Run(ss, 1, cache)
	if degraded.Metric("cache.unit.hit") != 0 {
		t.Fatal("run against an unusable cache dir cannot claim a unit hit")
	}
	if got := RenderRun(degraded); got != want {
		t.Fatalf("degraded run differs from baseline:\n%s", firstDiff(want, got))
	}
}
