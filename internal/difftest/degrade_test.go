package difftest

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysiscache"
)

// TestPipelineSurvivesCacheLoss warms a cache, then destroys the cache
// directory out from under it and re-runs the pipeline.
//
// The two legs pin two different survival modes. A fresh handle over the
// lost directory (a process restart after losing the disk tier) must
// degrade to clean misses and recompute. The original handle — even with
// the directory replaced by a regular file so every disk operation fails —
// legitimately keeps serving from the in-memory tier; disk loss costs
// nothing until restart. Both must render byte-identically to the uncached
// baseline.
func TestPipelineSurvivesCacheLoss(t *testing.T) {
	_, ss := smallSet(t)
	want := RenderRun(Run(ss, 1, nil))

	t.Run("restart-after-loss", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "cache")
		cache, err := analysiscache.Open(dir, analysiscache.WithMemory(0))
		if err != nil {
			t.Fatal(err)
		}
		cold := Run(ss, 1, cache)
		if got := RenderRun(cold); got != want {
			t.Fatalf("cold cached run differs from baseline:\n%s", firstDiff(want, got))
		}
		warm := Run(ss, 1, cache)
		if warm.Metric("cache.unit.hit") != 1 {
			t.Fatal("warm run should hit the unit cache")
		}

		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		reopened, err := analysiscache.Open(dir, analysiscache.WithMemory(0))
		if err != nil {
			t.Fatal(err)
		}
		degraded := Run(ss, 1, reopened)
		if degraded.Metric("cache.unit.hit") != 0 {
			t.Fatal("a restart after cache loss cannot claim a unit hit")
		}
		if got := RenderRun(degraded); got != want {
			t.Fatalf("degraded run differs from baseline:\n%s", firstDiff(want, got))
		}
	})

	t.Run("l1-enabled", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "cache")
		cache, err := analysiscache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cold := Run(ss, 1, cache)
		if got := RenderRun(cold); got != want {
			t.Fatalf("cold cached run differs from baseline:\n%s", firstDiff(want, got))
		}
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
			t.Fatal(err)
		}
		survived := Run(ss, 1, cache)
		if survived.Metric("cache.unit.hit") != 1 || survived.Metric("cache.l1.hit") == 0 {
			t.Fatalf("same-handle run must keep serving from L1 through disk loss: unit.hit=%d l1.hit=%d",
				survived.Metric("cache.unit.hit"), survived.Metric("cache.l1.hit"))
		}
		if got := RenderRun(survived); got != want {
			t.Fatalf("L1-served run differs from baseline:\n%s", firstDiff(want, got))
		}
	})
}
