package difftest

import (
	"context"
	"testing"

	"repro/internal/analysiscache"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
)

// runOpts analyzes the set with an explicit checker selection.
func runOpts(ss SourceSet, cache *analysiscache.Cache, checkers []core.Pattern) *core.Run {
	run, err := core.Analyze(context.Background(), core.Request{
		Sources: ss.Sources, Headers: ss.Headers,
		Options: core.Options{Workers: 1, Confirm: true, Cache: cache, Checkers: checkers},
		Trace:   obs.New("subset-test"),
	})
	if err != nil {
		panic("difftest: " + err.Error())
	}
	return run
}

// TestCheckerSubsetCacheIsolation proves the two cache-key claims the
// -checkers flag depends on: subset runs and full runs never share a
// unit-level entry (no poisoning in either direction), while both share the
// checker-independent facts entry (a subset run against a full-run cache
// skips straight to the pattern queries).
func TestCheckerSubsetCacheIsolation(t *testing.T) {
	ss := FromCorpus(corpus.Generate(corpus.Spec{Seed: 1}))
	subset := []core.Pattern{core.P1, core.P4}

	cache, err := analysiscache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Uncached references for both selections.
	fullRef := RenderRun(runOpts(ss, nil, nil))
	subsetRef := RenderRun(runOpts(ss, nil, subset))
	if fullRef == subsetRef {
		t.Fatal("fixture too weak: full and subset runs render identically")
	}

	// Cold full run populates the unit entry and the facts entry.
	cold := runOpts(ss, cache, nil)
	if cold.Metric("cache.unit.hit") != 0 || cold.Metric("cache.facts.hit") != 0 {
		t.Fatalf("cold run hit the cache: unit=%d facts=%d",
			cold.Metric("cache.unit.hit"), cold.Metric("cache.facts.hit"))
	}
	if got := RenderRun(cold); got != fullRef {
		t.Fatalf("cold cached run differs from uncached run:\n%s", firstDiff(fullRef, got))
	}

	// Subset run against the full-run cache: different unit key (miss), same
	// facts key (hit), byte-identical to the uncached subset run.
	sub := runOpts(ss, cache, subset)
	if sub.Metric("cache.unit.hit") != 0 {
		t.Fatal("subset run must not reuse the full run's unit entry")
	}
	if sub.Metric("cache.facts.hit") != 1 {
		t.Fatal("subset run should reuse the checker-independent facts entry")
	}
	if got := RenderRun(sub); got != subsetRef {
		t.Fatalf("cached subset run differs from uncached subset run:\n%s", firstDiff(subsetRef, got))
	}

	// The subset run must not have poisoned the full-run entry…
	warmFull := runOpts(ss, cache, nil)
	if warmFull.Metric("cache.unit.hit") != 1 {
		t.Fatal("full rerun missed its unit entry after a subset run")
	}
	if got := RenderRun(warmFull); got != fullRef {
		t.Fatalf("warm full run differs from baseline:\n%s", firstDiff(fullRef, got))
	}
	// …and the subset run now has its own warm entry.
	warmSub := runOpts(ss, cache, subset)
	if warmSub.Metric("cache.unit.hit") != 1 {
		t.Fatal("subset rerun missed its own unit entry")
	}
	if got := RenderRun(warmSub); got != subsetRef {
		t.Fatalf("warm subset run differs from subset baseline:\n%s", firstDiff(subsetRef, got))
	}

	// Spelling the full selection explicitly is the same engine — and the
	// same cache entry — as the nil default.
	explicit := runOpts(ss, cache, core.RegisteredPatterns())
	if explicit.Metric("cache.unit.hit") != 1 {
		t.Fatal("explicit full selection should share the default selection's unit entry")
	}
	if got := RenderRun(explicit); got != fullRef {
		t.Fatalf("explicit full selection differs from default:\n%s", firstDiff(fullRef, got))
	}
}
