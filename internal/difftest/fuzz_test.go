package difftest

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/clex"
	"repro/internal/core"
	"repro/internal/cparse"
	"repro/internal/cpg"
	"repro/internal/cpp"
)

// The fuzz targets cover the front end bottom-up: lexer, preprocessor,
// parser, then the whole pipeline. Each asserts termination (the fuzz engine
// catches hangs), no panics, and a target-specific oracle: lexing is
// print-stable, preprocessing and the full pipeline are deterministic.
// Checked-in seeds under testdata/fuzz include minimized regression inputs
// for the three hardening fixes (iterative bad-byte skipping in clex, the
// expansion token budget and depth cap in cpp, the nesting cap in cparse).

// FuzzLex asserts lex→print→lex stability: printing the token stream and
// re-lexing it must reproduce the same printed form (and, for error-free
// input, the exact same token stream).
func FuzzLex(f *testing.F) {
	f.Add("int main ( ) { return 0 ; }\n")
	f.Add("char * s = \"abc\nint x ;\n'\n/* open comment")
	f.Add("x += 1e10f >> 0x1f ; y = a ... b -> c ;\n")
	// Regression: long garbage runs must be skipped iteratively, not by
	// one recursive call per byte.
	f.Add(strings.Repeat("@", 1<<16))
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<20 {
			t.Skip("oversized input")
		}
		cfg := clex.Config{KeepComments: true, KeepNewlines: true}
		toks1, errs1 := clex.Tokenize("fuzz.c", src, cfg)
		s1 := PrintTokens(toks1)
		toks2, errs2 := clex.Tokenize("fuzz.c", s1, cfg)
		if s2 := PrintTokens(toks2); s2 != s1 {
			t.Fatalf("print/lex round-trip unstable:\nfirst:  %q\nsecond: %q", s1, s2)
		}
		if len(errs1) == 0 {
			if len(errs2) != 0 {
				t.Fatalf("re-lex of clean print introduced errors: %v", errs2)
			}
			if len(toks1) != len(toks2) {
				t.Fatalf("token count changed on re-lex: %d -> %d", len(toks1), len(toks2))
			}
			for i := range toks1 {
				if toks1[i].Kind != toks2[i].Kind || toks1[i].Text != toks2[i].Text {
					t.Fatalf("token %d changed on re-lex: %v %q -> %v %q",
						i, toks1[i].Kind, toks1[i].Text, toks2[i].Kind, toks2[i].Text)
				}
			}
		}
	})
}

// splitFuzzInput turns one fuzz string into a (header, translation unit)
// pair at the first "\n%%\n" marker, so the corpus can exercise include
// resolution; without a marker the whole input is the translation unit.
func splitFuzzInput(src string) (header, tu string) {
	if i := strings.Index(src, "\n%%\n"); i >= 0 {
		return src[:i], src[i+4:]
	}
	return "", src
}

// FuzzPreprocess asserts the preprocessor terminates on arbitrary input
// (include cycles, pathological macro chains) and is deterministic.
func FuzzPreprocess(f *testing.F) {
	f.Add("#define V 1\n\n%%\n#include <linux/fuzz.h>\nint x = V ;\n")
	f.Add("\n%%\n#define S(x) #x\n#define P(a,b) a ## b\nchar * s = S(hi) ; int P(va, lue) = 3 ;\n")
	f.Add("\n%%\n#ifdef A\nint x ;\n#else\nint y ;\n#endif\n#undef A\n")
	// Regression: self-including header (bounded by the include guards).
	f.Add("#include <linux/fuzz.h>\nint h ;\n%%\n#include <linux/fuzz.h>\n")
	// Regression: a doubling macro chain is exponential without the
	// expansion token budget.
	var double strings.Builder
	double.WriteString("\n%%\n#define A0 x x\n")
	for i := 1; i <= 30; i++ {
		fmt.Fprintf(&double, "#define A%d A%d A%d\n", i, i-1, i-1)
	}
	double.WriteString("A30\n")
	f.Add(double.String())
	// Regression: a linear chain of one-token macros nests the expansion
	// recursion as deep as the chain without the depth cap.
	var chain strings.Builder
	chain.WriteString("\n%%\n#define M0 0\n")
	for i := 1; i <= 400; i++ {
		fmt.Fprintf(&chain, "#define M%d M%d\n", i, i-1)
	}
	chain.WriteString("int x = M400 ;\n")
	f.Add(chain.String())
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<19 {
			t.Skip("oversized input")
		}
		header, tu := splitFuzzInput(src)
		process := func() *cpp.Result {
			files := cpp.MapFiles{"include/linux/fuzz.h": header}
			return cpp.New(files).Process("fuzz.c", tu)
		}
		r1, r2 := process(), process()
		if len(r1.Tokens) != len(r2.Tokens) {
			t.Fatalf("preprocessing nondeterministic: %d vs %d tokens", len(r1.Tokens), len(r2.Tokens))
		}
		for i := range r1.Tokens {
			if r1.Tokens[i].Text != r2.Tokens[i].Text {
				t.Fatalf("preprocessing nondeterministic at token %d: %q vs %q",
					i, r1.Tokens[i].Text, r2.Tokens[i].Text)
			}
		}
	})
}

// FuzzParse asserts the island parser terminates and returns a file on
// arbitrary token streams, including deeply nested ones.
func FuzzParse(f *testing.F) {
	f.Add("int f ( int a ) { if ( a ) { return a * 2 ; } return 0 ; }\n")
	f.Add("struct s { int a ; struct s * next ; } ; struct s v = { 1 , 0 } ;\n")
	f.Add("} } ) ; int ; ; = = 3 (\n")
	// Regression: deep expression/statement nesting must hit the nest cap,
	// not the goroutine stack limit.
	f.Add("int x = " + strings.Repeat("( ", 3000) + "1" + strings.Repeat(" )", 3000) + " ;\n")
	f.Add("void f ( ) " + strings.Repeat("{ ", 3000) + strings.Repeat("} ", 3000) + "\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<19 {
			t.Skip("oversized input")
		}
		toks, _ := clex.Tokenize("fuzz.c", src, clex.Config{})
		file, _ := cparse.ParseFile("fuzz.c", toks)
		if file == nil {
			t.Fatal("ParseFile returned nil file")
		}
	})
}

// FuzzPipeline runs the entire checker pipeline (preprocess, parse, CFG,
// CPG, all nine checkers, confirmation) on arbitrary input and asserts it
// neither crashes nor renders differently across two sequential runs.
func FuzzPipeline(f *testing.F) {
	f.Add("#include <linux/of.h>\nstatic int f(void)\n{\n\tstruct device_node *np;\n\n\tnp = of_find_compatible_node(NULL, NULL, \"x\");\n\tif (!np)\n\t\treturn -1;\n\treturn 0;\n}\n")
	f.Add("#define GET(n) of_node_get(n)\n%%\n#include <linux/fuzz.h>\nstatic void g(struct device_node *dn)\n{\n\tGET(dn);\n\tof_node_put(dn);\n}\n")
	f.Add("static void h(struct sock *sk)\n{\n\tsock_put(sk);\n\tsk->sk_err = 0;\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		header, tu := splitFuzzInput(src)
		headers := map[string]string{"include/linux/fuzz.h": header}
		sources := []cpg.Source{{Path: "fuzz/fuzz.c", Content: tu}}
		run := func() string {
			r, err := core.Analyze(context.Background(), core.Request{
				Sources: sources, Headers: headers,
				Options: core.Options{Workers: 1, Confirm: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			return RenderRun(r)
		}
		if r1, r2 := run(), run(); r1 != r2 {
			t.Fatalf("pipeline nondeterministic:\n%s", firstDiff(r1, r2))
		}
	})
}
