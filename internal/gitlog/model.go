// Package gitlog models the Linux kernel commit history the paper mined
// (§3.1) and provides a calibrated synthetic generator for it.
//
// The real study covered >1M commits across 753 releases (2005–2022),
// extracting 1,825 candidate patches and confirming 1,033 refcounting bugs.
// Offline we substitute a deterministic history whose *generating
// distributions* follow the paper's reported statistics (per-year growth,
// per-subsystem counts, classification taxonomy, Fixes-tag coverage,
// lifetimes); the mining pipeline in internal/mine then recovers the numbers
// from the history rather than reading them from the calibration constants.
package gitlog

import (
	"fmt"
	"time"
)

// Version is one kernel release.
type Version struct {
	Tag   string // "v2.6.12", "v4.9", "v5.10"
	Major string // "v2.6", "v3.x", "v4.x", "v5.x", "v6.x"
	Date  time.Time
	Index int // position in the release timeline
}

// DiffLine is one line of a unified diff.
type DiffLine struct {
	File string
	Func string // enclosing function from the hunk header, "" if unknown
	Op   byte   // '+', '-', ' '
	Text string
}

// Commit is one history entry.
type Commit struct {
	ID      string
	Version string // release the commit first appeared in
	Date    time.Time
	Subject string
	Body    string
	Diff    []DiffLine
	// FixesTag is the commit ID named by a "Fixes:" trailer, or "".
	FixesTag string
}

// Files returns the distinct files the commit touches.
func (c *Commit) Files() []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range c.Diff {
		if !seen[d.File] {
			seen[d.File] = true
			out = append(out, d.File)
		}
	}
	return out
}

// Subsystem returns the top-level directory of the commit's first file.
func (c *Commit) Subsystem() string {
	files := c.Files()
	if len(files) == 0 {
		return ""
	}
	for i := 0; i < len(files[0]); i++ {
		if files[0][i] == '/' {
			return files[0][:i]
		}
	}
	return files[0]
}

// Category is the paper's classification taxonomy (Table 2).
type Category string

// Categories.
const (
	MissingDecIntra Category = "missing-dec-intra" // 1.1
	MissingDecInter Category = "missing-dec-inter" // 1.2
	LeakOther       Category = "leak-other"        // 2
	MisplacingDec   Category = "misplacing-dec"    // 3.1 (UAD subset flagged)
	MisplacingInc   Category = "misplacing-inc"    // 3.2
	MissingIncIntra Category = "missing-inc-intra" // 4/5.1
	MissingIncInter Category = "missing-inc-inter" // 4/5.2
	UAFOther        Category = "uaf-other"         // 5
)

// Impact returns "Leak" or "UAF" for the category.
func (c Category) Impact() string {
	switch c {
	case MissingDecIntra, MissingDecInter, LeakOther:
		return "Leak"
	default:
		return "UAF"
	}
}

// BugTruth is generation ground truth for one refcounting bug-fix commit.
type BugTruth struct {
	FixCommit    string
	IntroCommit  string
	Category     Category
	IsUAD        bool // subset of MisplacingDec
	Subsystem    string
	API          string
	IntroVersion string
	FixVersion   string
	HasFixesTag  bool
}

// History is a synthetic kernel history with ground truth attached.
type History struct {
	Versions []Version
	Commits  []Commit
	// Truth maps fix-commit ID → ground truth.
	Truth map[string]*BugTruth
	// WrongPatches are candidate-looking commits later proven wrong by a
	// follow-up commit whose Fixes tag names them (§3.1's dcb4b8ad case).
	WrongPatches []string
}

// VersionByTag returns the version entry for a tag.
func (h *History) VersionByTag(tag string) *Version {
	for i := range h.Versions {
		if h.Versions[i].Tag == tag {
			return &h.Versions[i]
		}
	}
	return nil
}

// hashOf derives a stable fake commit hash from a seed and counter.
func hashOf(seed uint64, n int) string {
	x := seed ^ uint64(n)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	y := x*0x2545f4914f6cdd1d + uint64(n)
	z := y ^ (x >> 17) ^ 0xda942042e4dd58b5
	return fmt.Sprintf("%016x%016x%016x", x, y, z)[:40]
}
