package gitlog

// Calibration constants: every number here restates a statistic the paper
// reports; the generator turns them into a concrete history and the mining +
// study pipeline recovers them. Changing a constant here changes the
// reproduced tables/figures — nothing downstream hardcodes results.

// TotalBugs is the size of the studied dataset (§3.1).
const TotalBugs = 1033

// TotalCandidates is the stage-one candidate count (§3.1): keyword-matching
// patches before implementation-level confirmation.
const TotalCandidates = 1825

// WrongPatchCount seeds candidate commits later invalidated by a Fixes tag
// (the dcb4b8ad/0a96fa64 pair of §3.1).
const WrongPatchCount = 12

// FixesTagged is how many studied bugs carry a Fixes: trailer (§4.3).
const FixesTagged = 567

// CategoryShare is Table 2: studied-bug counts per classification. The rows
// sum to TotalBugs.
var CategoryShare = map[Category]int{
	MissingDecIntra: 590, // 57.1%
	MissingDecInter: 104, // 10.1%
	LeakOther:       46,  // 4.5%
	MisplacingDec:   119, // 11.5% (UADCount of them are UAD)
	MisplacingInc:   25,  // 2.4%
	MissingIncIntra: 53,  // 5.1%
	MissingIncInter: 22,  // 2.1%
	UAFOther:        74,  // 7.2%
}

// UADCount is the use-after-decrease subset of MisplacingDec (9.1%).
const UADCount = 94

// SubsystemShare is Figure 2 (left): studied-bug counts per subsystem.
// drivers+net+fs = 851 (82.4%); drivers alone 588 (56.9%); block carries 18
// bugs over only 65 KLOC, giving it the highest density (Figure 2 right).
var SubsystemShare = map[string]int{
	"drivers":  588,
	"net":      150,
	"fs":       113,
	"sound":    52,
	"arch":     36,
	"block":    18,
	"kernel":   24,
	"mm":       14,
	"crypto":   10,
	"ipc":      6,
	"security": 8,
	"virt":     6,
	"lib":      5,
	"init":     3,
}

// SubsystemKLOC approximates kernel tree sizes (thousands of lines) for the
// bug-density figure; block's small size is what pushes its density to the
// top.
var SubsystemKLOC = map[string]float64{
	"drivers":  13000,
	"net":      1150,
	"fs":       1300,
	"sound":    950,
	"arch":     2100,
	"block":    65,
	"kernel":   310,
	"mm":       170,
	"crypto":   120,
	"ipc":      30,
	"security": 210,
	"virt":     45,
	"lib":      190,
	"init":     18,
}

// YearShare is Figure 1: bug-fix counts per calendar year, a growth trend
// rising from single digits (2005) to the peak years of the 5.x series.
var YearShare = map[int]int{
	2005: 6, 2006: 9, 2007: 12, 2008: 17, 2009: 21, 2010: 26,
	2011: 31, 2012: 37, 2013: 44, 2014: 52, 2015: 58, 2016: 64,
	2017: 72, 2018: 83, 2019: 97, 2020: 122, 2021: 148, 2022: 134,
}

// Lifetime calibration (§4.3, Figure 3), over the FixesTagged subset:
//   - LongLivedShare: fraction needing >1 year to fix (75.7%).
//   - Decade: bugs alive >10 years (19, 7 of them UAF).
//   - FullSpan: bugs introduced in v2.6.y and fixed in v5.x/v6.x (23).
const (
	LongLivedPerMille = 757
	DecadeBugs        = 19
	DecadeUAF         = 7
	FullSpanBugs      = 23
)

// BackgroundCommits is the number of non-refcounting commits generated
// around the bug fixes; they carry the word2vec training text and the
// stage-one decoys. (The real history has >1M commits; we scale down three
// orders of magnitude and document the ratio — mining quality depends on the
// decoy *shape*, not the absolute count.)
const BackgroundCommits = 24000

// modulesBySubsystem provides module directories for path synthesis.
var modulesBySubsystem = map[string][]string{
	"drivers": {"clk", "gpu", "net", "usb", "soc", "mmc", "media", "iio",
		"tty", "scsi", "pci", "spi", "i2c", "power", "video", "block",
		"crypto", "dma", "hwmon", "input", "rtc", "thermal", "w1", "nvmem"},
	"net":      {"ipv4", "ipv6", "core", "sched", "wireless", "bluetooth", "tipc", "sctp", "appletalk"},
	"fs":       {"ext4", "btrfs", "nfs", "cifs", "xfs", "proc", "overlayfs", "jffs2", "gfs2", "afs"},
	"sound":    {"soc", "pci", "usb", "core"},
	"arch":     {"arm", "arm64", "powerpc", "x86", "mips", "sparc", "riscv"},
	"block":    {""},
	"kernel":   {"sched", "time", "irq", "trace"},
	"mm":       {""},
	"crypto":   {""},
	"ipc":      {""},
	"security": {"selinux", "tomoyo", "apparmor"},
	"virt":     {"kvm"},
	"lib":      {""},
	"init":     {""},
}
