package gitlog

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/corpus"
)

type rng uint64

func (s *rng) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.next() % uint64(n))
}

// shuffle permutes a slice deterministically.
func shuffle[T any](r *rng, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Generate builds the synthetic history from the shared generation spec:
// corpus.Spec.Scale multiplies every calibrated count (kernel-scale
// histories), Shrink divides them (shape-preserving miniatures for tests),
// and Background overrides the calibrated background-commit count when > 0.
func Generate(spec corpus.Spec) *History {
	scale := spec.Scale
	if scale <= 0 {
		scale = 1
	}
	shrink := spec.Shrink
	if shrink <= 0 {
		shrink = 1
	}
	scaleCount := func(n int) int {
		s := n * scale / shrink
		if s == 0 && n > 0 {
			s = 1
		}
		return s
	}
	background := spec.Background
	if background <= 0 {
		background = scaleCount(BackgroundCommits)
	}
	r := rng(uint64(spec.Seed) | 1)
	h := &History{Truth: map[string]*BugTruth{}}
	h.Versions = makeVersions()

	// --- bug slot assignment ---
	type slot struct {
		cat       Category
		isUAD     bool
		subsystem string
		fixYear   int
		tagged    bool
		introYear int // 0 = untracked
		fullSpan  bool
	}
	var cats []Category
	for _, c := range []Category{ // fixed order for determinism
		MissingDecIntra, MissingDecInter, LeakOther, MisplacingDec,
		MisplacingInc, MissingIncIntra, MissingIncInter, UAFOther,
	} {
		for i := 0; i < scaleCount(CategoryShare[c]); i++ {
			cats = append(cats, c)
		}
	}
	total := len(cats)
	uadLeft := scaleCount(UADCount)

	var subs []string
	subNames := make([]string, 0, len(SubsystemShare))
	for s := range SubsystemShare {
		subNames = append(subNames, s)
	}
	sort.Strings(subNames)
	for _, s := range subNames {
		for i := 0; i < scaleCount(SubsystemShare[s]); i++ {
			subs = append(subs, s)
		}
	}
	for len(subs) < total {
		subs = append(subs, "drivers")
	}

	var years []int
	for y := 2005; y <= 2022; y++ {
		for i := 0; i < scaleCount(YearShare[y]); i++ {
			years = append(years, y)
		}
	}
	for len(years) < total {
		years = append(years, 2015+r.intn(8))
	}

	shuffle(&r, cats)
	shuffle(&r, subs)
	shuffle(&r, years)

	slots := make([]slot, total)
	for i := range slots {
		slots[i] = slot{cat: cats[i], subsystem: subs[i%len(subs)], fixYear: years[i%len(years)]}
		if slots[i].cat == MisplacingDec && uadLeft > 0 {
			slots[i].isUAD = true
			uadLeft--
		}
	}

	// Fixes tags: prefer recent fixes (the trailer convention matured late)
	// but keep coverage everywhere.
	taggedWant := scaleCount(FixesTagged)
	order := make([]int, total)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return slots[order[a]].fixYear > slots[order[b]].fixYear })
	for i := 0; i < taggedWant && i < total; i++ {
		slots[order[i]].tagged = true
	}

	// Lifetimes over the tagged subset.
	var tagged []int
	for i := range slots {
		if slots[i].tagged {
			tagged = append(tagged, i)
		}
	}
	// Full-span bugs: introduced in the v2.6 era (2005–2010), fixed in
	// v5.x/v6.x (>= 2019). Favour UAF categories first to cover the
	// "7 decade-old UAF bugs" statistic.
	fullSpanWant := scaleCount(FullSpanBugs)
	decadeUAFWant := scaleCount(DecadeUAF)
	assigned := 0
	uafAssigned := 0
	for _, pass := range []string{"uaf", "any"} {
		for _, i := range tagged {
			if assigned >= fullSpanWant {
				break
			}
			s := &slots[i]
			if s.fullSpan || s.fixYear < 2019 {
				continue
			}
			isUAF := s.cat.Impact() == "UAF"
			if pass == "uaf" && (!isUAF || uafAssigned >= decadeUAFWant) {
				continue
			}
			s.fullSpan = true
			s.introYear = 2005 + r.intn(4) // lifetime >= 10y
			if isUAF {
				uafAssigned++
			}
			assigned++
		}
	}
	// Non-full-span decade bugs to reach DecadeBugs total.
	decadeWant := scaleCount(DecadeBugs)
	decadeHave := assigned // all full-span assignments so far exceed 10y
	for _, i := range tagged {
		if decadeHave >= decadeWant {
			break
		}
		s := &slots[i]
		if s.introYear != 0 || s.fixYear < 2017 {
			continue
		}
		s.introYear = s.fixYear - 11
		decadeHave++
	}
	// >1-year bugs to reach the 75.7% share; the rest fixed within a year.
	longWant := taggedWant * LongLivedPerMille / 1000
	longHave := 0
	for _, i := range tagged {
		if slots[i].introYear != 0 {
			longHave++
		}
	}
	for _, i := range tagged {
		s := &slots[i]
		if s.introYear != 0 {
			continue
		}
		if longHave < longWant {
			span := 2 + r.intn(7) // 2..8 years
			s.introYear = s.fixYear - span
			// Keep ordinary long-lived bugs out of the v2.6 era so the
			// full-span count stays exactly calibrated.
			if s.introYear < 2012 {
				s.introYear = 2012
			}
			if s.introYear > s.fixYear {
				s.introYear = s.fixYear
			}
			longHave++
		} else {
			s.introYear = s.fixYear // fixed within the year
		}
	}

	// --- commit materialization ---
	counter := 0
	newID := func() string {
		counter++
		return hashOf(uint64(spec.Seed), counter)
	}
	versionFor := func(year int, late bool) *Version {
		// Pick a release in the year; bug fixes land in the year's later
		// releases when late.
		var candidates []*Version
		for i := range h.Versions {
			if h.Versions[i].Date.Year() == year {
				candidates = append(candidates, &h.Versions[i])
			}
		}
		if len(candidates) == 0 {
			return &h.Versions[len(h.Versions)-1]
		}
		if late {
			return candidates[len(candidates)-1]
		}
		return candidates[r.intn(len(candidates))]
	}

	for i := range slots {
		s := &slots[i]
		intro := Commit{ID: newID()}
		iv := versionFor(s.introYear, false)
		if s.introYear == 0 {
			iv = versionFor(s.fixYear, false)
		}
		intro.Version = iv.Tag
		intro.Date = iv.Date
		module := pickModule(&r, s.subsystem)
		fnBase := fmt.Sprintf("%s_unit%d", strings.ReplaceAll(module+"_"+s.subsystem, "/", "_"), i)
		intro.Subject = fmt.Sprintf("%s: %s: add %s support", s.subsystem, module, fnBase)
		intro.Body = "Introduce the initial implementation.\n"
		intro.Diff = introDiff(s.subsystem, module, fnBase)
		h.Commits = append(h.Commits, intro)

		fix := Commit{ID: newID()}
		fv := versionFor(s.fixYear, true)
		if s.fullSpan && fv.Major != "v5.x" && fv.Major != "v6.x" {
			// Force a v5/v6 release for full-span bugs.
			for j := len(h.Versions) - 1; j >= 0; j-- {
				if h.Versions[j].Date.Year() == s.fixYear {
					fv = &h.Versions[j]
					break
				}
			}
		}
		fix.Version = fv.Tag
		fix.Date = fv.Date
		fix.Subject, fix.Body, fix.Diff = fixContent(&r, s.cat, s.isUAD, s.subsystem, module, fnBase)
		if s.tagged {
			fix.FixesTag = intro.ID
			fix.Body += fmt.Sprintf("\nFixes: %.12s (\"%s\")\n", intro.ID, intro.Subject)
		}
		h.Commits = append(h.Commits, fix)
		h.Truth[fix.ID] = &BugTruth{
			FixCommit: fix.ID, IntroCommit: intro.ID,
			Category: s.cat, IsUAD: s.isUAD, Subsystem: s.subsystem,
			API:          fixAPI(s.subsystem),
			IntroVersion: intro.Version, FixVersion: fix.Version,
			HasFixesTag: s.tagged,
		}
	}

	// --- stage-one decoys (keyword match, non-refcounting APIs) ---
	decoys := scaleCount(TotalCandidates-TotalBugs) - scaleCount(WrongPatchCount)
	for i := 0; i < decoys; i++ {
		c := Commit{ID: newID()}
		v := &h.Versions[r.intn(len(h.Versions))]
		c.Version, c.Date = v.Tag, v.Date
		name := decoyAPIs[r.intn(len(decoyAPIs))]
		c.Subject = fmt.Sprintf("drivers: misc: use %s for configuration", name)
		c.Body = "No functional change intended.\n"
		c.Diff = []DiffLine{
			{File: "drivers/misc/cfg.c", Func: "cfg_apply", Op: '+',
				Text: fmt.Sprintf("\terr = %s(dev, &cfg);", name)},
		}
		h.Commits = append(h.Commits, c)
	}

	// --- wrong patches plus their corrections ---
	for i := 0; i < scaleCount(WrongPatchCount); i++ {
		wrong := Commit{ID: newID()}
		v := versionFor(2015+r.intn(6), false)
		wrong.Version, wrong.Date = v.Tag, v.Date
		wrong.Subject = fmt.Sprintf("drivers: usb: fix memory leak in uss%d_probe", 700+i)
		wrong.Body = "Add the missing reference drop.\n"
		wrong.Diff = []DiffLine{
			{File: "drivers/usb/misc/uss.c", Func: fmt.Sprintf("uss%d_probe", 700+i),
				Op: '+', Text: "\tusb_serial_put(serial);"},
		}
		h.Commits = append(h.Commits, wrong)
		h.WrongPatches = append(h.WrongPatches, wrong.ID)

		correct := Commit{ID: newID()}
		cv := versionFor(2019+r.intn(4), true)
		correct.Version, correct.Date = cv.Tag, cv.Date
		correct.FixesTag = wrong.ID
		correct.Subject = fmt.Sprintf("drivers: usb: fix improper handling of refcount in uss%d_probe", 700+i)
		correct.Body = fmt.Sprintf("The previous patch added an extra decrement causing a premature free.\n\nFixes: %.12s (\"%s\")\n", wrong.ID, wrong.Subject)
		// The correction reverts the extra decrement by guarding the path;
		// its own diff stays outside the keyword filter so the calibrated
		// dataset count is not perturbed.
		correct.Diff = []DiffLine{
			{File: "drivers/usb/misc/uss.c", Func: fmt.Sprintf("uss%d_probe", 700+i),
				Op: '+', Text: "\tif (!serial)"},
			{File: "drivers/usb/misc/uss.c", Func: fmt.Sprintf("uss%d_probe", 700+i),
				Op: '+', Text: "\t\treturn -ENODEV;"},
		}
		h.Commits = append(h.Commits, correct)
	}

	// --- background commits (word2vec training text, mining noise) ---
	for i := 0; i < background; i++ {
		c := Commit{ID: newID()}
		v := &h.Versions[r.intn(len(h.Versions))]
		c.Version, c.Date = v.Tag, v.Date
		c.Subject, c.Body = backgroundText(&r, i)
		// Context-only API lines: they carry the API-name token structure
		// that drives Table 3 without entering the stage-one add/delete
		// keyword filter.
		n := 2 + r.intn(3)
		for j := 0; j < n; j++ {
			c.Diff = append(c.Diff, DiffLine{
				File: "drivers/misc/bg.c", Op: ' ',
				Text: apiLines[r.intn(len(apiLines))],
			})
		}
		c.Diff = append(c.Diff, DiffLine{File: "drivers/misc/bg.c", Op: '+', Text: "\t/* housekeeping */"})
		h.Commits = append(h.Commits, c)
	}

	sort.SliceStable(h.Commits, func(a, b int) bool {
		if !h.Commits[a].Date.Equal(h.Commits[b].Date) {
			return h.Commits[a].Date.Before(h.Commits[b].Date)
		}
		return h.Commits[a].ID < h.Commits[b].ID
	})
	return h
}

// makeVersions builds the 2005–2022 release timeline: every major from
// v2.6.12 to v6.1 plus stable point releases (~753 total, §3.1).
func makeVersions() []Version {
	var out []Version
	add := func(tag, major string, date time.Time, points int) {
		out = append(out, Version{Tag: tag, Major: major, Date: date})
		for p := 1; p <= points; p++ {
			out = append(out, Version{
				Tag: fmt.Sprintf("%s.%d", tag, p), Major: major,
				Date: date.AddDate(0, 0, 21*p),
			})
		}
	}
	date := time.Date(2005, 6, 17, 0, 0, 0, 0, time.UTC)
	for i := 12; i <= 39; i++ { // v2.6.12..v2.6.39
		add(fmt.Sprintf("v2.6.%d", i), "v2.6", date, 6)
		date = date.AddDate(0, 2, 21)
	}
	for i := 0; i <= 19; i++ { // v3.0..v3.19
		add(fmt.Sprintf("v3.%d", i), "v3.x", date, 7)
		date = date.AddDate(0, 2, 9)
	}
	for i := 0; i <= 20; i++ { // v4.0..v4.20
		add(fmt.Sprintf("v4.%d", i), "v4.x", date, 8)
		date = date.AddDate(0, 2, 6)
	}
	for i := 0; i <= 19; i++ { // v5.0..v5.19
		add(fmt.Sprintf("v5.%d", i), "v5.x", date, 9)
		date = date.AddDate(0, 2, 6)
	}
	add("v6.0", "v6.x", date, 6)
	add("v6.1", "v6.x", date.AddDate(0, 2, 10), 6)
	for i := range out {
		out[i].Index = i
	}
	return out
}

// ReleaseTags returns n kernel release tags evenly spaced across the
// calibrated major-release timeline (v2.6.12 .. v6.1). corpus.GenerateReleases
// callers use these as snapshot names so a multi-release corpus lines up with
// the mined history's version axis.
func ReleaseTags(n int) []string {
	var majors []string
	for _, v := range makeVersions() {
		if isMajorTag(v.Tag) {
			majors = append(majors, v.Tag)
		}
	}
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []string{majors[len(majors)-1]}
	}
	if n >= len(majors) {
		return majors
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = majors[i*(len(majors)-1)/(n-1)]
	}
	return out
}

// isMajorTag reports whether tag names a major release (v2.6.N, vX.Y) rather
// than a stable point release (v2.6.N.P, vX.Y.Z).
func isMajorTag(tag string) bool {
	dots := strings.Count(tag, ".")
	if strings.HasPrefix(tag, "v2.6.") {
		return dots == 2
	}
	return dots == 1
}

func pickModule(r *rng, subsystem string) string {
	mods := modulesBySubsystem[subsystem]
	if len(mods) == 0 {
		return ""
	}
	return mods[r.intn(len(mods))]
}

// subsystemAPIs maps each subsystem to its characteristic (inc, dec) pair.
var subsystemAPIs = map[string][2]string{
	"drivers":  {"of_node_get", "of_node_put"},
	"net":      {"dev_hold", "dev_put"},
	"fs":       {"kref_get", "kref_put"},
	"sound":    {"of_node_get", "of_node_put"},
	"arch":     {"of_node_get", "of_node_put"},
	"block":    {"kobject_get", "kobject_put"},
	"kernel":   {"kref_get", "kref_put"},
	"mm":       {"kref_get", "kref_put"},
	"crypto":   {"kobject_get", "kobject_put"},
	"ipc":      {"kref_get", "kref_put"},
	"security": {"kref_get", "kref_put"},
	"virt":     {"kref_get", "kref_put"},
	"lib":      {"kobject_get", "kobject_put"},
	"init":     {"of_node_get", "of_node_put"},
}

func fixAPI(subsystem string) string {
	pair, ok := subsystemAPIs[subsystem]
	if !ok {
		return "of_node_put"
	}
	return pair[1]
}

// decoyAPIs look like refcounting names to the keyword filter but do not
// resolve as refcounting APIs in the implementation check.
var decoyAPIs = []string{
	"regmap_get_config", "budget_release_all", "irq_take_snapshot",
	"fifo_drop_stale", "dma_buf_hold_md", "port_grab_stats",
	"clk_put_rate_hint", "hub_release_quirks", "ring_get_watermark",
}

func filePath(subsystem, module string) string {
	if module == "" {
		return subsystem + "/main.c"
	}
	return subsystem + "/" + module + "/" + module + ".c"
}

func introDiff(subsystem, module, fnBase string) []DiffLine {
	f := filePath(subsystem, module)
	return []DiffLine{
		{File: f, Func: fnBase + "_setup", Op: '+', Text: "\tstruct obj *o = alloc_obj();"},
		{File: f, Func: fnBase + "_setup", Op: '+', Text: "\tregister_unit(o);"},
	}
}

// fixContent produces subject, body and a classification-recoverable diff
// for the given category.
func fixContent(r *rng, cat Category, isUAD bool, subsystem, module, fnBase string) (string, string, []DiffLine) {
	pair := subsystemAPIs[subsystem]
	inc, dec := pair[0], pair[1]
	f := filePath(subsystem, module)
	fn := fnBase + "_setup"
	loc := subsystem
	if module != "" {
		loc = subsystem + ": " + module
	}
	switch cat {
	case MissingDecIntra:
		return fmt.Sprintf("%s: fix refcount leak in %s", loc, fn),
			"The reference obtained at the start of the function is never\ndropped on the error path, causing a memory leak.\n",
			[]DiffLine{
				{File: f, Func: fn, Op: ' ', Text: fmt.Sprintf("\t%s(o);", inc)},
				{File: f, Func: fn, Op: ' ', Text: "\tif (err)"},
				{File: f, Func: fn, Op: '+', Text: fmt.Sprintf("\t\t%s(o);", dec)},
			}
	case MissingDecInter:
		return fmt.Sprintf("%s: fix refcount leak in %s_teardown", loc, fnBase),
			"The reference taken in the open callback was never dropped in the\nrelease callback, causing a memory leak.\n",
			[]DiffLine{
				{File: f, Func: fnBase + "_teardown", Op: '+', Text: fmt.Sprintf("\t%s(o);", dec)},
			}
	case LeakOther:
		return fmt.Sprintf("%s: drop reference on the correct object in %s", loc, fn),
			"The put was called on the wrong object, leaking the intended one\n(out of memory over time).\n",
			[]DiffLine{
				{File: f, Func: fn, Op: '-', Text: fmt.Sprintf("\t%s(parent);", dec)},
				{File: f, Func: fn, Op: '+', Text: fmt.Sprintf("\t%s(o);", dec)},
			}
	case MisplacingDec:
		// The UAD flavour moves the drop past an access to the same object
		// (Listing 2 / Listing 6); the plain flavour moves it past
		// unrelated code. The classifier keys on the intervening context.
		if isUAD {
			return fmt.Sprintf("%s: fix use-after-free in %s", loc, fn),
				"The object is still accessed after the reference drop; if the\ncounter hits zero this is a use-after-free.\n",
				[]DiffLine{
					{File: f, Func: fn, Op: '-', Text: fmt.Sprintf("\t%s(o);", dec)},
					{File: f, Func: fn, Op: ' ', Text: "\to->state = CLOSED;"},
					{File: f, Func: fn, Op: '+', Text: fmt.Sprintf("\t%s(o);", dec)},
				}
		}
		return fmt.Sprintf("%s: fix use-after-free in %s", loc, fn),
			"Drop the reference outside the critical section to keep the\nrelease path from running under the lock (use-after-free window).\n",
			[]DiffLine{
				{File: f, Func: fn, Op: '-', Text: fmt.Sprintf("\t%s(o);", dec)},
				{File: f, Func: fn, Op: ' ', Text: "\tlog_event(ctx);"},
				{File: f, Func: fn, Op: '+', Text: fmt.Sprintf("\t%s(o);", dec)},
			}
	case MisplacingInc:
		return fmt.Sprintf("%s: take the reference before publishing in %s", loc, fn),
			"Take the reference before the object becomes visible to avoid a\nuse-after-free window.\n",
			[]DiffLine{
				{File: f, Func: fn, Op: '-', Text: fmt.Sprintf("\t%s(o);", inc)},
				{File: f, Func: fn, Op: ' ', Text: "\tpublish(o);"},
				{File: f, Func: fn, Op: '+', Text: fmt.Sprintf("\t%s(o);", inc)},
			}
	case MissingIncIntra:
		return fmt.Sprintf("%s: fix premature free in %s", loc, fn),
			"A reference escapes without an increment; when the caller drops its\nreference the object is freed while still in use (use-after-free).\n",
			[]DiffLine{
				{File: f, Func: fn, Op: ' ', Text: fmt.Sprintf("\t%s(o);", dec)},
				{File: f, Func: fn, Op: '+', Text: fmt.Sprintf("\t%s(o);", inc)},
			}
	case MissingIncInter:
		return fmt.Sprintf("%s: hold a reference in %s_attach", loc, fnBase),
			"The attach path stores the object without holding a reference; the\ndetach path drops one it never took (use-after-free).\n",
			[]DiffLine{
				{File: f, Func: fnBase + "_attach", Op: '+', Text: fmt.Sprintf("\t%s(o);", inc)},
			}
	default: // UAFOther
		return fmt.Sprintf("%s: fix refcount imbalance crash in %s", loc, fn),
			"Rework the ordering to avoid a use-after-free crash under load.\n",
			[]DiffLine{
				{File: f, Func: fn, Op: '-', Text: fmt.Sprintf("\t%s(o);", dec)},
				{File: f, Func: fn, Op: '+', Text: fmt.Sprintf("\t%s_sync(o);", dec)},
			}
	}
}

// backgroundTemplates carry the Table 3 co-occurrence signal with
// kernel-realistic weights: find-like API names co-occur strongly with
// get/put (the find family *calls* get-named APIs), parse moderately, the
// foreach iterators mostly with iteration vocabulary, and "unhold" never
// occurs at all. The weights set the relative similarity ordering; nothing
// reads the resulting matrix back from a constant.
var backgroundTemplates = []struct {
	weight  int
	subject string
	body    string
}{
	{22, "drivers: of: find the matching node for the bus",
		"Use of_find_compatible_node to get the node and remember to put the\nreference with of_node_put when done; the find helper will get the\nnode so the caller must put it."},
	{14, "drivers: of: find the node by name before setup",
		"of_find_node_by_name will get a reference on the node it returns; the\ncaller should put the node with of_node_put, pairing the hidden get."},
	{8, "drivers: base: find a device on the bus",
		"bus_find_device will get a reference on the returned device, so the\ncaller has to put it with put_device once the find result is consumed."},
	{9, "drivers: of: parse the phandle arguments",
		"of_parse_phandle will parse the property and get a node reference; the\ncaller should put it via of_node_put after the parse completes."},
	{4, "drivers: of: parse the ranges property",
		"parse the register ranges and map the window; the parse step caches\nthe offsets for the probe path."},
	{9, "net: core: hold the netdevice while queued",
		"dev_hold keeps the device alive and dev_put releases the reference\nwhen the queue drains; every hold pairs with a put."},
	{5, "fs: grab the inode returned by the find helper",
		"grab a reference on the inode the find returned and release it after\nwriteback, otherwise the missed put leaks memory."},
	{4, "kernel: grab the task before signalling",
		"grab the task with get_task_struct and drop the reference with\nput_task_struct after the signal is delivered."},
	{12, "drivers: iterate over the request list",
		"Use the foreach helper list_for_each_entry to iterate the pending\nrequests and complete each element in turn; the loop advances the\ncursor itself on every iteration of the walk."},
	{2, "drivers: iterate over the matching nodes",
		"The foreach macro walks every entry; when code breaks out of the\niteration early it must put the current node with of_node_put."},
	{8, "drivers: probe the controller and map resources",
		"During probe, map the registers, get the clock reference and enable\nthe regulators; the remove path must put what probe acquired."},
	{6, "drivers: open the character device",
		"The open callback should get a reference on the backing device and\nthe release callback must put it; open and release mirror each other."},
	{7, "sound: soc: register the card components",
		"register the dai links and unregister them on remove; the register\npath may get a node reference that unregister has to put."},
	{4, "kernel: sched: retain runqueue statistics",
		"retain the statistics snapshot across the rebalance and free the\nbuffer after reporting; nothing here touches device state."},
	{3, "mm: increase the page reference during migration",
		"increase the reference count with get_page and decrease it again with\nput_page once migration finishes."},
	{3, "doc: explain the refcount rules for finders",
		"A find-like API will get the object and the caller must put it; the\nrefcount must return to its origin value once the user is done."},
	{6, "drivers: rework the interrupt bookkeeping",
		"Rework the handler bookkeeping so the threaded part runs with the\nline masked; purely mechanical change, no functional difference."},
	{6, "fs: tidy the writeback batching logic",
		"Batch the dirty pages per inode and flush them in file offset order\nto cut seek traffic on rotational media."},
}

// apiLines is the weighted pool of code context lines in background diffs;
// tokenized API names (of_find_* / of_get_* / of_node_put / …) are where the
// refcounting keywords really live in kernel text, and their shared
// of/node/np token neighborhoods are what puts find↔get at the top of
// Table 3.
var apiLines = func() []string {
	weighted := []struct {
		weight int
		line   string
	}{
		{10, "\tnp = of_find_compatible_node(parent, 0, id);"},
		{8, "\tnp = of_find_node_by_name(parent, name);"},
		{6, "\tnp = of_find_matching_node(parent, table);"},
		{9, "\tparent = of_get_parent(np);"},
		{7, "\tchild = of_get_child_by_name(np, name);"},
		{6, "\tof_node_get(np);"},
		{14, "\tof_node_put(np);"},
		{6, "\tph = of_parse_phandle(np, clocks, 0);"},
		{2, "\tfor_each_child_of_node(parent, child) {"},
		{1, "\tfor_each_node_by_name(np, name) {"},
		{6, "\tlist_for_each_entry(pos, &head, list) {"},
		{4, "\tfor_each_possible_cpu(cpu) {"},
		{3, "\tfor_each_set_bit(bit, mask, width) {"},
		{3, "\terr = platform_driver_register(drv);"},
		{3, "\tret = foo_probe(pdev);"},
		{2, "\tfd = chardev_open(path, mode);"},
		{3, "\trelease_firmware(fw);"},
		{2, "\tdev_hold(ndev);"},
		{3, "\tdev_put(ndev);"},
		{4, "\tspin_lock(&priv->lock);"},
		{4, "\twritel(val, priv->base + reg);"},
	}
	var out []string
	for _, w := range weighted {
		for i := 0; i < w.weight; i++ {
			out = append(out, w.line)
		}
	}
	return out
}()

// Frame families drive Table 3. CBOW similarity is context
// interchangeability, so each family is a sentence frame whose slot is
// filled by weighted verbs; verbs sharing a high-frequency family align.
// Family one mirrors devicetree API naming (of_find_node_by_name /
// of_get_child_by_name / of_node_put), which is exactly why the paper
// measures find↔get = 0.73: the find family *is* a get family by another
// name. The iterator keyword lives in its own frame, and counter prose
// (refcount/increase/decrease/hold/grab/retain/drop) occupies a third,
// keeping those rows uniformly low as in the paper.
type frameFamily struct {
	frames []string
	verbs  []struct {
		weight int
		verb   string
	}
	total int
}

func newFamily(frames []string, verbs ...struct {
	weight int
	verb   string
}) *frameFamily {
	f := &frameFamily{frames: frames, verbs: verbs}
	for _, v := range verbs {
		f.total += v.weight
	}
	return f
}

type wv = struct {
	weight int
	verb   string
}

var frameFamilies = []struct {
	weight int
	family *frameFamily
}{
	{46, newFamily(
		[]string{
			"of %s node by name for the controller.",
			"of %s the child node under the parent.",
			"%s the device node handle for the port.",
		},
		wv{30, "find"}, wv{30, "get"}, wv{17, "put"}, wv{9, "parse"},
		wv{4, "release"}, wv{2, "probe"},
	)},
	{16, newFamily(
		[]string{
			"the %s callback of the platform driver runs first.",
			"wire the %s hook into the bus driver table.",
		},
		wv{9, "open"}, wv{9, "probe"}, wv{8, "register"}, wv{8, "release"},
		wv{3, "get"}, wv{3, "put"}, wv{2, "parse"},
	)},
	{14, newFamily(
		[]string{
			"%s the usage counter under the object lock.",
			"%s the module counter around the window.",
		},
		wv{5, "refcount"}, wv{4, "increase"}, wv{4, "decrease"},
		wv{5, "hold"}, wv{4, "grab"}, wv{3, "retain"}, wv{4, "drop"},
	)},
	{10, newFamily(
		[]string{
			"%s every child entry in the flattened list.",
			"walk %s across the table rows in order.",
		},
		wv{12, "foreach"},
	)},
}

var frameFamilyTotal = func() int {
	t := 0
	for _, ff := range frameFamilies {
		t += ff.weight
	}
	return t
}()

// frameSentence renders one frame line from a weighted family and verb.
func frameSentence(r *rng) string {
	pick := r.intn(frameFamilyTotal)
	fam := frameFamilies[len(frameFamilies)-1].family
	for _, ff := range frameFamilies {
		if pick < ff.weight {
			fam = ff.family
			break
		}
		pick -= ff.weight
	}
	vp := r.intn(fam.total)
	verb := fam.verbs[len(fam.verbs)-1].verb
	for _, v := range fam.verbs {
		if vp < v.weight {
			verb = v.verb
			break
		}
		vp -= v.weight
	}
	return fmt.Sprintf(fam.frames[r.intn(len(fam.frames))], verb)
}

var backgroundWeightTotal = func() int {
	t := 0
	for _, bt := range backgroundTemplates {
		t += bt.weight
	}
	return t
}()

// backgroundText picks a weighted template and appends shared-frame lines.
func backgroundText(r *rng, i int) (string, string) {
	subject, body := "", ""
	pick := r.intn(backgroundWeightTotal)
	for _, bt := range backgroundTemplates {
		if pick < bt.weight {
			subject, body = bt.subject, bt.body
			break
		}
		pick -= bt.weight
	}
	if subject == "" {
		last := backgroundTemplates[len(backgroundTemplates)-1]
		subject, body = last.subject, last.body
	}
	body += "\n\n" + frameSentence(r) + "\n" + frameSentence(r)
	return subject, body + fmt.Sprintf("\n\nChange-Id: bg%06d\n", i)
}
