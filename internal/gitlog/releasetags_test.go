package gitlog

import "testing"

// TestReleaseTags pins the snapshot-tag selection against the calibrated
// timeline: tags are real major releases, strictly ordered, and always span
// the full v2.6.12..v6.1 window when n >= 2.
func TestReleaseTags(t *testing.T) {
	if got := ReleaseTags(0); got != nil {
		t.Errorf("ReleaseTags(0) = %v, want nil", got)
	}
	if got := ReleaseTags(1); len(got) != 1 || got[0] != "v6.1" {
		t.Errorf("ReleaseTags(1) = %v, want [v6.1]", got)
	}
	for _, n := range []int{2, 3, 5, 10} {
		tags := ReleaseTags(n)
		if len(tags) != n {
			t.Fatalf("ReleaseTags(%d) returned %d tags", n, len(tags))
		}
		if tags[0] != "v2.6.12" || tags[n-1] != "v6.1" {
			t.Errorf("ReleaseTags(%d) endpoints = %s..%s, want v2.6.12..v6.1", n, tags[0], tags[n-1])
		}
		seen := make(map[string]bool)
		for _, tag := range tags {
			if !isMajorTag(tag) {
				t.Errorf("ReleaseTags(%d): %s is not a major tag", n, tag)
			}
			if seen[tag] {
				t.Errorf("ReleaseTags(%d): duplicate tag %s", n, tag)
			}
			seen[tag] = true
		}
	}
	// Asking for more snapshots than the timeline has majors degrades to
	// the full major list rather than duplicating.
	all := ReleaseTags(10000)
	if len(all) >= 10000 || len(all) < 50 {
		t.Errorf("ReleaseTags(10000) = %d tags, want the full major list (~90)", len(all))
	}
}
