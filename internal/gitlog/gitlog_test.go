package gitlog

import (
	"strings"
	"testing"

	"repro/internal/corpus"
)

func TestVersionsTimeline(t *testing.T) {
	vs := makeVersions()
	if len(vs) < 700 || len(vs) > 810 {
		t.Errorf("versions = %d, want ~753", len(vs))
	}
	if vs[0].Tag != "v2.6.12" {
		t.Errorf("first = %s", vs[0].Tag)
	}
	last := vs[len(vs)-1]
	if last.Major != "v6.x" {
		t.Errorf("last major = %s", last.Major)
	}
	for i := 1; i < len(vs); i++ {
		if vs[i].Index != i {
			t.Fatalf("index mismatch at %d", i)
		}
	}
	first, lastV := vs[0].Date.Year(), last.Date.Year()
	if first != 2005 || lastV < 2022 {
		t.Errorf("timeline %d..%d, want 2005..2022+", first, lastV)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(corpus.Spec{Seed: 3, Background: 100})
	b := Generate(corpus.Spec{Seed: 3, Background: 100})
	if len(a.Commits) != len(b.Commits) {
		t.Fatalf("commit counts differ")
	}
	for i := range a.Commits {
		if a.Commits[i].ID != b.Commits[i].ID || a.Commits[i].Subject != b.Commits[i].Subject {
			t.Fatalf("commit %d differs", i)
		}
	}
}

func TestTruthCounts(t *testing.T) {
	h := Generate(corpus.Spec{Seed: 1, Background: 200})
	if len(h.Truth) != TotalBugs {
		t.Fatalf("truth = %d, want %d", len(h.Truth), TotalBugs)
	}
	cats := map[Category]int{}
	subs := map[string]int{}
	tagged, uad := 0, 0
	for _, bt := range h.Truth {
		cats[bt.Category]++
		subs[bt.Subsystem]++
		if bt.HasFixesTag {
			tagged++
		}
		if bt.IsUAD {
			uad++
		}
	}
	for c, want := range CategoryShare {
		if cats[c] != want {
			t.Errorf("category %s = %d, want %d", c, cats[c], want)
		}
	}
	for s, want := range SubsystemShare {
		if subs[s] != want {
			t.Errorf("subsystem %s = %d, want %d", s, subs[s], want)
		}
	}
	if tagged != FixesTagged {
		t.Errorf("tagged = %d, want %d", tagged, FixesTagged)
	}
	if uad != UADCount {
		t.Errorf("UAD = %d, want %d", uad, UADCount)
	}
}

func TestLifetimeCalibration(t *testing.T) {
	h := Generate(corpus.Spec{Seed: 1, Background: 100})
	long, decade, fullSpan, decadeUAF := 0, 0, 0, 0
	for _, bt := range h.Truth {
		if !bt.HasFixesTag {
			continue
		}
		iv := h.VersionByTag(bt.IntroVersion)
		fv := h.VersionByTag(bt.FixVersion)
		if iv == nil || fv == nil {
			t.Fatalf("missing version %s or %s", bt.IntroVersion, bt.FixVersion)
		}
		years := fv.Date.Sub(iv.Date).Hours() / 24 / 365
		if years > 1 {
			long++
		}
		if years > 10 {
			decade++
			if bt.Category.Impact() == "UAF" {
				decadeUAF++
			}
		}
		if iv.Major == "v2.6" && (fv.Major == "v5.x" || fv.Major == "v6.x") {
			fullSpan++
		}
	}
	if fullSpan != FullSpanBugs {
		t.Errorf("full-span = %d, want %d", fullSpan, FullSpanBugs)
	}
	if decade < DecadeBugs {
		t.Errorf("decade bugs = %d, want >= %d", decade, DecadeBugs)
	}
	if decadeUAF < DecadeUAF {
		t.Errorf("decade UAF = %d, want >= %d", decadeUAF, DecadeUAF)
	}
	share := float64(long) / float64(FixesTagged)
	if share < 0.70 || share > 0.82 {
		t.Errorf("long-lived share = %.3f, want ~0.757", share)
	}
}

func TestWrongPatchesAreFixed(t *testing.T) {
	h := Generate(corpus.Spec{Seed: 1, Background: 100})
	if len(h.WrongPatches) != WrongPatchCount {
		t.Fatalf("wrong patches = %d", len(h.WrongPatches))
	}
	fixedBy := map[string]bool{}
	for _, c := range h.Commits {
		if c.FixesTag != "" {
			fixedBy[c.FixesTag] = true
		}
	}
	for _, id := range h.WrongPatches {
		if !fixedBy[id] {
			t.Errorf("wrong patch %s has no correcting Fixes tag", id)
		}
	}
}

func TestCommitShape(t *testing.T) {
	h := Generate(corpus.Spec{Seed: 1, Background: 100})
	for id, bt := range h.Truth {
		var fix *Commit
		for i := range h.Commits {
			if h.Commits[i].ID == id {
				fix = &h.Commits[i]
			}
		}
		if fix == nil {
			t.Fatalf("fix commit %s missing", id)
		}
		if fix.Subsystem() != bt.Subsystem {
			t.Errorf("commit subsystem %q != truth %q", fix.Subsystem(), bt.Subsystem)
		}
		if bt.HasFixesTag && !strings.Contains(fix.Body, "Fixes:") {
			t.Errorf("tagged commit body lacks trailer: %q", fix.Body)
		}
		if len(fix.Diff) == 0 {
			t.Errorf("fix %s has empty diff", id)
		}
		break
	}
}

func TestScaleDown(t *testing.T) {
	h := Generate(corpus.Spec{Seed: 2, Shrink: 10, Background: 50})
	if len(h.Truth) < 90 || len(h.Truth) > 115 {
		t.Errorf("scaled truth = %d, want ~103", len(h.Truth))
	}
}

func TestSortedByDate(t *testing.T) {
	h := Generate(corpus.Spec{Seed: 1, Background: 100})
	for i := 1; i < len(h.Commits); i++ {
		if h.Commits[i].Date.Before(h.Commits[i-1].Date) {
			t.Fatalf("commits not date-sorted at %d", i)
		}
	}
}
