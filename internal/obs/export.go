package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// This file holds the three exporters:
//
//   - Tree / WriteSummary: human-readable — a canonical span tree (structure
//     only, deterministic) and a -v summary table (phases + metrics).
//   - WriteStatsJSON: machine-readable metrics, folded into
//     BENCH_pipeline.json by scripts/bench_pipeline.sh.
//   - WriteChromeTrace: Chrome trace-event JSON ("X" complete events),
//     loadable in chrome://tracing and Perfetto.

// attrKey canonicalizes a span's attributes for deterministic sibling
// ordering and tree rendering.
func attrKey(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.Key + "=" + a.Val
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// childIndex groups a snapshot by parent id with siblings in canonical
// (name, attrs) order — the deterministic merge of per-worker span buffers.
func childIndex(spans []spanSnap) map[int64][]spanSnap {
	byParent := map[int64][]spanSnap{}
	for _, s := range spans {
		byParent[s.parent] = append(byParent[s.parent], s)
	}
	for _, kids := range byParent {
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].name != kids[j].name {
				return kids[i].name < kids[j].name
			}
			ai, aj := attrKey(kids[i].attrs), attrKey(kids[j].attrs)
			if ai != aj {
				return ai < aj
			}
			return kids[i].start < kids[j].start
		})
	}
	return byParent
}

// Tree renders the span tree's structure — names and attributes, no timings
// or ids — in canonical order. Two runs that performed the same work render
// identical trees regardless of worker count or span arrival order; the
// difftest suite asserts exactly that.
func Tree(t *Trace) string {
	spans := t.snapshot()
	if len(spans) == 0 {
		return ""
	}
	byParent := childIndex(spans)
	var b strings.Builder
	var walk func(parent int64, depth int)
	walk = func(parent int64, depth int) {
		for _, s := range byParent[parent] {
			b.WriteString(strings.Repeat("  ", depth))
			b.WriteString(s.name)
			if k := attrKey(s.attrs); k != "" {
				b.WriteString("{" + k + "}")
			}
			b.WriteByte('\n')
			walk(s.id, depth+1)
		}
	}
	walk(0, 0)
	return b.String()
}

// WriteSummary prints the human -v table: the phase spans directly under the
// root with wall times, then every counter, gauge, and histogram in sorted
// name order.
func WriteSummary(w io.Writer, t *Trace) {
	if t == nil {
		return
	}
	spans := t.snapshot()
	byParent := childIndex(spans)
	var rootID int64
	for _, s := range spans {
		if s.parent == 0 {
			rootID = s.id
			break
		}
	}
	fmt.Fprintf(w, "%s: wall %v\n", t.Name(), t.Wall().Round(time.Microsecond))
	for _, ph := range byParent[rootID] {
		fmt.Fprintf(w, "  phase %-18s %10.3fms (%d spans)\n",
			ph.name, float64(ph.dur)/1e6, countDescendants(byParent, ph.id))
	}
	reg := t.Reg()
	counters := reg.Counters()
	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  counter %-28s %d\n", n, counters[n])
	}
	gauges := reg.Gauges()
	names = names[:0]
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  gauge   %-28s %.3f\n", n, gauges[n])
	}
	hists := reg.Hists()
	names = names[:0]
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := hists[n]
		avg := 0.0
		if h.Count > 0 {
			avg = h.Sum / float64(h.Count)
		}
		fmt.Fprintf(w, "  hist    %-28s n=%d avg=%.3f min=%.3f max=%.3f\n",
			n, h.Count, avg, h.Min, h.Max)
	}
}

func countDescendants(byParent map[int64][]spanSnap, id int64) int {
	n := 0
	for _, c := range byParent[id] {
		n += 1 + countDescendants(byParent, c.id)
	}
	return n
}

// StatsJSON is the -stats-json payload shape.
type StatsJSON struct {
	Trace    string              `json:"trace"`
	WallMS   float64             `json:"wall_ms"`
	Phases   []PhaseStat         `json:"phases"`
	Counters map[string]int64    `json:"counters"`
	Gauges   map[string]float64  `json:"gauges"`
	Hists    map[string]HistStat `json:"histograms"`
}

// PhaseStat is one top-level phase's wall time.
type PhaseStat struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
}

// Stats assembles the machine-readable metrics snapshot.
func Stats(t *Trace) StatsJSON {
	out := StatsJSON{
		Trace:    t.Name(),
		WallMS:   float64(t.Wall()) / 1e6,
		Counters: t.Reg().Counters(),
		Gauges:   t.Reg().Gauges(),
		Hists:    t.Reg().Hists(),
	}
	if out.Counters == nil {
		out.Counters = map[string]int64{}
	}
	if out.Gauges == nil {
		out.Gauges = map[string]float64{}
	}
	if out.Hists == nil {
		out.Hists = map[string]HistStat{}
	}
	spans := t.snapshot()
	byParent := childIndex(spans)
	var rootID int64
	for _, s := range spans {
		if s.parent == 0 {
			rootID = s.id
			break
		}
	}
	for _, ph := range byParent[rootID] {
		out.Phases = append(out.Phases, PhaseStat{Name: ph.name, MS: float64(ph.dur) / 1e6})
	}
	return out
}

// WriteStatsJSON writes the metrics snapshot as indented JSON.
func WriteStatsJSON(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Stats(t))
}

// ChromeEvent is one Chrome trace-event ("X" complete event). The format is
// the JSON array flavor of the trace-event spec, accepted by
// chrome://tracing and Perfetto.
type ChromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds since trace start
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeEvents converts the span set to trace events. Spans are laid out on
// greedy non-overlapping lanes (tids) so concurrent work renders side by
// side instead of stacked into a fake call tree.
func ChromeEvents(t *Trace) []ChromeEvent {
	spans := t.snapshot()
	if len(spans) == 0 {
		return []ChromeEvent{}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].id < spans[j].id
	})
	var laneEnd []time.Duration
	events := make([]ChromeEvent, 0, len(spans))
	for _, s := range spans {
		lane := -1
		for li, end := range laneEnd {
			if end <= s.start {
				lane = li
				break
			}
		}
		if lane == -1 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = s.start + s.dur
		ev := ChromeEvent{
			Name: s.name, Cat: t.Name(), Ph: "X",
			TS:  float64(s.start) / 1e3,
			Dur: float64(s.dur) / 1e3,
			PID: 1, TID: lane + 1,
		}
		if len(s.attrs) > 0 {
			ev.Args = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				ev.Args[a.Key] = a.Val
			}
		}
		events = append(events, ev)
	}
	return events
}

// WriteChromeTrace writes the span set as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ChromeEvents(t))
}
