// Package obs is the pipeline's observability layer: hierarchical spans with
// monotonic timings, a registry of counters/gauges/histograms, and exporters
// (human summary, machine-readable stats JSON, Chrome trace-event JSON).
//
// It is stdlib-only and deliberately tiny — just enough structure that every
// stage of the lexer→cpp→cparse→CPG→facts→checkers→refsim pipeline can be
// measured instead of guessed at.
//
// # Nop path
//
// Nop() returns a nil *Trace; every method on a nil *Trace, *Span, or
// *Registry is a no-op that performs zero allocations, so instrumented code
// never branches on "is observability on" — it just calls through. Reports
// are byte-identical with observability on or off because the layer only
// observes; nothing reads it back into the analysis.
//
// # Determinism under the worker pool
//
// Spans may be created and ended concurrently from any worker goroutine
// (creation appends under a mutex, exactly like the engine's per-worker
// report buffers). Arrival order is therefore nondeterministic, but every
// exporter orders spans canonically — parent before child, siblings by
// (name, attributes) — mirroring how per-worker report buffers are merged
// back into sequential order. Tree() output and counter values are identical
// at any worker count; only timings vary.
package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute. Attributes should be deterministic facts about
// the work (a file path, a function name), never timings or worker IDs, so
// exported span trees compare equal across runs.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Trace is one run's span collection plus its metric registry. The zero
// value is not usable; construct with New. A nil *Trace (obs.Nop()) is the
// disabled path: every method no-ops.
type Trace struct {
	name string
	t0   time.Time
	reg  *Registry
	root *Span

	mu    sync.Mutex
	spans []*Span
	ids   atomic.Int64
}

// New starts a trace whose root span is named name. The root is open until
// Done (exporters treat still-open spans as ending at export time, so
// forgetting Done only inflates the root's duration).
func New(name string) *Trace {
	tr := &Trace{name: name, t0: time.Now(), reg: NewRegistry()}
	tr.root = tr.newSpan(nil, name)
	return tr
}

// Nop returns the disabled trace: nil, on which every span and registry
// operation is a zero-allocation no-op.
func Nop() *Trace { return nil }

// Name returns the trace name ("" for Nop).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Reg returns the trace's metric registry (nil for Nop; *Registry methods
// are nil-safe).
func (t *Trace) Reg() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Root returns the root span (nil for Nop).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Done ends the root span.
func (t *Trace) Done() {
	if t == nil {
		return
	}
	t.root.End()
}

// Wall returns the wall time since the trace started.
func (t *Trace) Wall() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.t0)
}

func (t *Trace) newSpan(parent *Span, name string) *Span {
	s := &Span{
		tr:     t,
		parent: parent,
		id:     t.ids.Add(1),
		name:   name,
		start:  time.Since(t.t0),
		dur:    -1,
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Span is one timed region of the run, forming a tree under the trace root.
// Spans are safe for concurrent use: children may be created from any
// goroutine, and attribute writes are locked.
type Span struct {
	tr     *Trace
	parent *Span
	id     int64
	name   string
	start  time.Duration // monotonic offset from trace start

	mu    sync.Mutex
	attrs []Attr
	dur   time.Duration // -1 while open
}

// Child opens a sub-span. Safe on a nil receiver (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s, name)
}

// Str attaches a string attribute and returns s for chaining. Nil-safe.
func (s *Span) Str(key, val string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
	return s
}

// Int attaches an integer attribute and returns s for chaining. Nil-safe.
func (s *Span) Int(key string, val int) *Span {
	if s == nil {
		return nil
	}
	return s.Str(key, strconv.Itoa(val))
}

// End closes the span with a monotonic duration. Ending twice keeps the
// first duration. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Since(s.tr.t0)
	s.mu.Lock()
	if s.dur < 0 {
		s.dur = now - s.start
	}
	s.mu.Unlock()
}

// Reg returns the owning trace's registry (nil on a nil span), so
// instrumented code can reach metrics through whatever span it was handed.
func (s *Span) Reg() *Registry {
	if s == nil {
		return nil
	}
	return s.tr.reg
}

// spanSnap is one span frozen for export: still-open spans are given their
// duration as of the snapshot.
type spanSnap struct {
	id, parent int64
	name       string
	attrs      []Attr
	start, dur time.Duration
}

// snapshot freezes every span. Safe to call while workers still run; the
// result is a consistent copy.
func (t *Trace) snapshot() []spanSnap {
	if t == nil {
		return nil
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := make([]spanSnap, len(spans))
	for i, s := range spans {
		s.mu.Lock()
		snap := spanSnap{
			id: s.id, name: s.name, start: s.start, dur: s.dur,
			attrs: append([]Attr(nil), s.attrs...),
		}
		s.mu.Unlock()
		if s.parent != nil {
			snap.parent = s.parent.id
		}
		if snap.dur < 0 {
			snap.dur = now - snap.start
		}
		out[i] = snap
	}
	return out
}
