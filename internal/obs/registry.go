package obs

import "sync"

// Registry holds a run's metrics: monotonically increasing counters,
// last-write-wins gauges, and min/max/sum histograms. All methods are safe
// for concurrent use and nil-safe (a nil *Registry is the Nop path).
//
// Metric names are dotted lowercase paths ("frontend.cache.hit"); the full
// catalog the pipeline emits is documented in DESIGN.md's Observability
// section. Counter values are deterministic at any worker count whenever the
// underlying quantity is (report counts, cache hits, tokens); histogram and
// gauge *values* carry timings and are not.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*HistStat
}

// HistStat is one histogram's summary statistics.
type HistStat struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]*HistStat{},
	}
}

// Add increments a counter. Nil-safe.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// SetGauge records the latest value of a gauge. Nil-safe.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe folds one sample into a histogram. Nil-safe.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &HistStat{Min: v, Max: v}
		r.hists[name] = h
	}
	h.Count++
	h.Sum += v
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	r.mu.Unlock()
}

// Counter returns a counter's current value (0 when absent or nil).
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge returns a gauge's current value (0 when absent or nil).
func (r *Registry) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Counters returns a copy of every counter.
func (r *Registry) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Gauges returns a copy of every gauge.
func (r *Registry) Gauges() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.gauges))
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}

// RegistryStats is a point-in-time copy of a registry's metrics — the
// served-stats snapshot a long-running process exposes over its /stats
// endpoint, where there is no finished Trace to export (the full StatsJSON
// shape needs span timings; a server's registry outlives every request).
type RegistryStats struct {
	Counters map[string]int64    `json:"counters"`
	Gauges   map[string]float64  `json:"gauges"`
	Hists    map[string]HistStat `json:"histograms"`
}

// Snapshot copies every metric. Nil-safe: a nil registry snapshots to empty
// (never nil) maps, so the result always marshals to JSON objects.
func (r *Registry) Snapshot() RegistryStats {
	s := RegistryStats{
		Counters: r.Counters(),
		Gauges:   r.Gauges(),
		Hists:    r.Hists(),
	}
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	if s.Hists == nil {
		s.Hists = map[string]HistStat{}
	}
	return s
}

// Hists returns a copy of every histogram's summary.
func (r *Registry) Hists() map[string]HistStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]HistStat, len(r.hists))
	for k, v := range r.hists {
		out[k] = *v
	}
	return out
}
