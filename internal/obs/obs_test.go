package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNopZeroAllocation is the contract the pipeline's hot paths rely on:
// the disabled observability path allocates nothing, so leaving the calls
// threaded through every stage costs effectively zero.
func TestNopZeroAllocation(t *testing.T) {
	tr := Nop()
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.Root()
		sp := root.Child("tu").Str("path", "a.c").Int("tokens", 42)
		sp.Reg().Add("frontend.cache.hit", 1)
		sp.Reg().Observe("frontend.tu_ms", 1.5)
		sp.Reg().SetGauge("pipeline.files_per_sec", 10)
		sp.End()
		tr.Done()
	})
	if allocs != 0 {
		t.Fatalf("Nop path allocates %v per op, want 0", allocs)
	}
}

// TestSpanTreeCanonicalOrder: spans created concurrently in arbitrary order
// must render as one deterministic tree — the per-worker buffer merge
// guarantee.
func TestSpanTreeCanonicalOrder(t *testing.T) {
	build := func(shuffle bool) string {
		tr := New("run")
		phase := tr.Root().Child("phase:build")
		var wg sync.WaitGroup
		names := []string{"c.c", "a.c", "b.c", "d.c"}
		if shuffle {
			names = []string{"d.c", "b.c", "a.c", "c.c"}
		}
		for _, n := range names {
			wg.Add(1)
			go func(n string) {
				defer wg.Done()
				sp := phase.Child("tu").Str("path", n)
				sp.End()
			}(n)
		}
		wg.Wait()
		phase.End()
		tr.Done()
		return Tree(tr)
	}
	a, b := build(false), build(true)
	if a != b {
		t.Fatalf("span trees differ across creation orders:\n%s\nvs\n%s", a, b)
	}
	want := "run\n  phase:build\n    tu{path=a.c}\n    tu{path=b.c}\n    tu{path=c.c}\n    tu{path=d.c}\n"
	if a != want {
		t.Fatalf("tree =\n%s\nwant\n%s", a, want)
	}
}

// TestChromeTraceRoundTrip validates the trace-event JSON schema: the output
// must parse back into complete ("X") events with the fields Perfetto and
// chrome://tracing require, with non-negative microsecond timings and no
// overlapping spans within one lane.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := New("roundtrip")
	p1 := tr.Root().Child("phase:build")
	p1.Child("tu").Str("path", "a.c").End()
	p1.Child("tu").Str("path", "b.c").End()
	p1.End()
	tr.Root().Child("phase:check").Int("functions", 3).End()
	tr.Done()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not a JSON event array: %v", err)
	}
	if len(events) != 5 { // root + 2 phases + 2 TUs
		t.Fatalf("got %d events, want 5", len(events))
	}
	laneEnd := map[int]float64{}
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Errorf("event %q: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Name == "" || ev.PID == 0 || ev.TID == 0 {
			t.Errorf("event missing required fields: %+v", ev)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %q has negative timing: ts=%v dur=%v", ev.Name, ev.TS, ev.Dur)
		}
		if end, ok := laneEnd[ev.TID]; ok && ev.TS < end {
			t.Errorf("event %q overlaps previous span in lane %d", ev.Name, ev.TID)
		}
		laneEnd[ev.TID] = ev.TS + ev.Dur
	}
	withArgs := 0
	for _, ev := range events {
		if ev.Args["path"] != "" {
			withArgs++
		}
	}
	if withArgs != 2 {
		t.Errorf("expected 2 events with path args, got %d", withArgs)
	}
}

// TestStatsJSONRoundTrip: the -stats-json payload must parse back and carry
// the registry contents.
func TestStatsJSONRoundTrip(t *testing.T) {
	tr := New("stats")
	tr.Root().Child("phase:build").End()
	tr.Reg().Add("frontend.tokens", 123)
	tr.Reg().SetGauge("pipeline.files_per_sec", 4.5)
	tr.Reg().Observe("frontend.tu_ms", 2)
	tr.Reg().Observe("frontend.tu_ms", 4)
	tr.Done()

	var buf bytes.Buffer
	if err := WriteStatsJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var got StatsJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Trace != "stats" || got.Counters["frontend.tokens"] != 123 {
		t.Errorf("round-trip lost data: %+v", got)
	}
	if h := got.Hists["frontend.tu_ms"]; h.Count != 2 || h.Sum != 6 || h.Min != 2 || h.Max != 4 {
		t.Errorf("hist round-trip = %+v", h)
	}
	if len(got.Phases) != 1 || got.Phases[0].Name != "phase:build" {
		t.Errorf("phases = %+v", got.Phases)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines; -race
// plus exact totals catch both data races and lost updates.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Add("c", 1)
				reg.Observe("h", 1)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c"); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if h := reg.Hists()["h"]; h.Count != 8000 || h.Sum != 8000 {
		t.Errorf("hist = %+v", h)
	}
}

// TestSummaryAndNopExporters: exporters must not panic on a Nop trace and
// the summary must mention every metric family.
func TestSummaryAndNopExporters(t *testing.T) {
	var buf bytes.Buffer
	WriteSummary(&buf, Nop())
	if buf.Len() != 0 {
		t.Errorf("Nop summary wrote %q", buf.String())
	}
	if err := WriteChromeTrace(&buf, Nop()); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("Nop chrome trace = %q, want []", buf.String())
	}
	if Tree(Nop()) != "" {
		t.Error("Nop tree must be empty")
	}

	tr := New("sum")
	tr.Root().Child("phase:build").End()
	tr.Reg().Add("frontend.tokens", 1)
	tr.Reg().SetGauge("g", 1)
	tr.Reg().Observe("h", 1)
	tr.Done()
	buf.Reset()
	WriteSummary(&buf, tr)
	for _, want := range []string{"phase:build", "counter", "gauge", "hist"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, buf.String())
		}
	}
}
