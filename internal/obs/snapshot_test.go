package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Add("serve.requests", 3)
	r.SetGauge("serve.inflight", 2)
	r.Observe("serve.wall_ms", 1.5)
	r.Observe("serve.wall_ms", 2.5)

	s := r.Snapshot()
	if s.Counters["serve.requests"] != 3 {
		t.Errorf("counter: %d", s.Counters["serve.requests"])
	}
	if s.Gauges["serve.inflight"] != 2 {
		t.Errorf("gauge: %f", s.Gauges["serve.inflight"])
	}
	if h := s.Hists["serve.wall_ms"]; h.Count != 2 || h.Sum != 4 || h.Min != 1.5 || h.Max != 2.5 {
		t.Errorf("hist: %+v", h)
	}

	// The snapshot is a copy: later registry writes must not leak into it.
	r.Add("serve.requests", 1)
	if s.Counters["serve.requests"] != 3 {
		t.Error("snapshot aliases the live registry")
	}
}

func TestRegistrySnapshotNil(t *testing.T) {
	var r *Registry
	s := r.Snapshot()
	if s.Counters == nil || s.Gauges == nil || s.Hists == nil {
		t.Fatal("nil registry snapshot has nil maps")
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"counters":{}`, `"gauges":{}`, `"histograms":{}`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("marshal missing %s: %s", want, data)
		}
	}
}
