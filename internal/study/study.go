// Package study computes the paper's characteristic study (§4) over a mined
// bug dataset: security impacts and classification (Table 2), the growth
// trend (Figure 1), subsystem distribution and bug density (Figure 2),
// lifetimes (Figure 3), and the five numbered findings.
package study

import (
	"fmt"
	"sort"

	"repro/internal/gitlog"
	"repro/internal/mine"
)

// Study wraps a mined dataset for analysis.
type Study struct {
	History *gitlog.History
	Result  *mine.Result
}

// New builds a study over a mining result.
func New(h *gitlog.History, res *mine.Result) *Study {
	return &Study{History: h, Result: res}
}

// --- Figure 1 ---

// YearCount is one point of the growth trend.
type YearCount struct {
	Year       int
	Count      int
	Cumulative int
}

// GrowthTrend returns per-year fix counts 2005–2022 with cumulative totals
// (Figure 1).
func (s *Study) GrowthTrend() []YearCount {
	per := map[int]int{}
	for _, r := range s.Result.Dataset {
		per[r.FixYear]++
	}
	var years []int
	for y := range per {
		years = append(years, y)
	}
	sort.Ints(years)
	var out []YearCount
	cum := 0
	for _, y := range years {
		cum += per[y]
		out = append(out, YearCount{Year: y, Count: per[y], Cumulative: cum})
	}
	return out
}

// --- Table 2 ---

// Table2Row is one taxonomy row with its share of the dataset.
type Table2Row struct {
	Impact   string
	Label    string
	Category gitlog.Category
	Count    int
	Percent  float64
}

// Table2 holds the classification with headline aggregates.
type Table2 struct {
	Rows       []Table2Row
	Total      int
	LeakCount  int
	UAFCount   int
	UADCount   int
	MissingDec int
	IntraDec   int
}

// Classification computes Table 2 from the mined dataset.
func (s *Study) Classification() Table2 {
	counts := map[gitlog.Category]int{}
	uad := 0
	for _, r := range s.Result.Dataset {
		counts[r.Category]++
		if r.IsUAD {
			uad++
		}
	}
	total := len(s.Result.Dataset)
	pct := func(n int) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(total)
	}
	order := []struct {
		cat   gitlog.Category
		label string
	}{
		{gitlog.MissingDecIntra, "1.1 Missing-Decreasing (Intra-Unpaired)"},
		{gitlog.MissingDecInter, "1.2 Missing-Decreasing (Inter-Unpaired)"},
		{gitlog.LeakOther, "2.  Others (Leak)"},
		{gitlog.MisplacingDec, "3.1 Misplacing-Refcounting (Decreasing)"},
		{gitlog.MisplacingInc, "3.2 Misplacing-Refcounting (Increasing)"},
		{gitlog.MissingIncIntra, "4.1 Missing-Increasing (Intra-Unpaired)"},
		{gitlog.MissingIncInter, "4.2 Missing-Increasing (Inter-Unpaired)"},
		{gitlog.UAFOther, "5.  Others (UAF)"},
	}
	t := Table2{Total: total, UADCount: uad}
	for _, o := range order {
		n := counts[o.cat]
		t.Rows = append(t.Rows, Table2Row{
			Impact: o.cat.Impact(), Label: o.label, Category: o.cat,
			Count: n, Percent: pct(n),
		})
		if o.cat.Impact() == "Leak" {
			t.LeakCount += n
		} else {
			t.UAFCount += n
		}
	}
	t.MissingDec = counts[gitlog.MissingDecIntra] + counts[gitlog.MissingDecInter]
	t.IntraDec = counts[gitlog.MissingDecIntra]
	return t
}

// --- Figure 2 ---

// SubsystemStat is one bar of Figure 2.
type SubsystemStat struct {
	Subsystem string
	Bugs      int
	KLOC      float64
	Density   float64 // bugs per KLOC
}

// Distribution returns per-subsystem bug counts and densities sorted by bug
// count (Figure 2).
func (s *Study) Distribution() []SubsystemStat {
	counts := map[string]int{}
	for _, r := range s.Result.Dataset {
		counts[r.Subsystem]++
	}
	var out []SubsystemStat
	for sub, n := range counts {
		st := SubsystemStat{Subsystem: sub, Bugs: n}
		if kloc, ok := gitlog.SubsystemKLOC[sub]; ok && kloc > 0 {
			st.KLOC = kloc
			st.Density = float64(n) / kloc
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bugs != out[j].Bugs {
			return out[i].Bugs > out[j].Bugs
		}
		return out[i].Subsystem < out[j].Subsystem
	})
	return out
}

// --- Figure 3 ---

// LifetimeStats summarizes the Fixes-tagged subset (§4.3).
type LifetimeStats struct {
	Tagged      int
	OverOneYear int
	OverDecade  int
	DecadeUAF   int
	FullSpan    int // introduced in v2.6.y, fixed in v5.x/v6.x
	// MajorSpans counts bugs by introduced-major → fixed-major transitions
	// ("v4.x→v5.x": 135-style statistics).
	MajorSpans map[string]int
	// SameMajorV5 counts bugs introduced and fixed within v5.x.
	SameMajorV5 int
}

// Lifetimes computes Figure 3's statistics.
func (s *Study) Lifetimes() LifetimeStats {
	st := LifetimeStats{MajorSpans: map[string]int{}}
	for _, r := range s.Result.Dataset {
		if !r.HasFixesTag || r.LifetimeDays < 0 {
			continue
		}
		st.Tagged++
		years := float64(r.LifetimeDays) / 365
		if years > 1 {
			st.OverOneYear++
		}
		if years > 10 {
			st.OverDecade++
			if r.Impact == "UAF" {
				st.DecadeUAF++
			}
		}
		iv := s.History.VersionByTag(r.IntroVersion)
		fv := s.History.VersionByTag(r.FixVersion)
		if iv == nil || fv == nil {
			continue
		}
		span := iv.Major + "->" + fv.Major
		st.MajorSpans[span]++
		if iv.Major == "v2.6" && (fv.Major == "v5.x" || fv.Major == "v6.x") {
			st.FullSpan++
		}
		if iv.Major == "v5.x" && fv.Major == "v5.x" {
			st.SameMajorV5++
		}
	}
	return st
}

// --- Findings ---

// Finding is one of the paper's numbered findings with its measured value.
type Finding struct {
	ID        int
	Statement string
	Measured  string
	Holds     bool
}

// Findings evaluates Findings 1–5 against the mined dataset.
func (s *Study) Findings() []Finding {
	t2 := s.Classification()
	dist := s.Distribution()
	lt := s.Lifetimes()
	total := float64(t2.Total)

	var fs []Finding

	leakPct := 100 * float64(t2.LeakCount) / total
	missingDecPct := 100 * float64(t2.MissingDec) / total
	intraPct := 100 * float64(t2.IntraDec) / total
	fs = append(fs, Finding{
		ID:        1,
		Statement: "a majority (~71.7%) of bugs lead to memory leaks; ~67.2% are missing-decreasing; >57% are intra-unpaired",
		Measured: fmt.Sprintf("leak %.1f%%, missing-dec %.1f%%, intra %.1f%%",
			leakPct, missingDecPct, intraPct),
		Holds: leakPct > 60 && missingDecPct > 55 && intraPct > 50,
	})

	uafPct := 100 * float64(t2.UAFCount) / total
	uadPct := 100 * float64(t2.UADCount) / total
	fs = append(fs, Finding{
		ID:        2,
		Statement: "~28.3% of bugs lead to UAF; ~9.1% are use-after-decrease",
		Measured:  fmt.Sprintf("uaf %.1f%%, uad %.1f%%", uafPct, uadPct),
		Holds:     uafPct > 20 && uafPct < 40 && uadPct > 5 && uadPct < 15,
	})

	top3 := 0
	driversShare := 0.0
	blockTopDensity := true
	var blockDensity float64
	for _, d := range dist {
		if d.Subsystem == "block" {
			blockDensity = d.Density
		}
	}
	byName := map[string]SubsystemStat{}
	for _, d := range dist {
		byName[d.Subsystem] = d
		if d.Density > blockDensity+1e-9 {
			blockTopDensity = false
		}
	}
	top3 = byName["drivers"].Bugs + byName["net"].Bugs + byName["fs"].Bugs
	driversShare = 100 * float64(byName["drivers"].Bugs) / total
	fs = append(fs, Finding{
		ID:        3,
		Statement: "long-tailed distribution: drivers+net+fs hold ~82% and drivers ~57%; block has the highest density",
		Measured: fmt.Sprintf("top3 %.1f%%, drivers %.1f%%, block density %.3f (highest: %v)",
			100*float64(top3)/total, driversShare, blockDensity, blockTopDensity),
		Holds: float64(top3)/total > 0.75 && driversShare > 50 && blockTopDensity,
	})

	longShare := 0.0
	if lt.Tagged > 0 {
		longShare = 100 * float64(lt.OverOneYear) / float64(lt.Tagged)
	}
	fs = append(fs, Finding{
		ID:        4,
		Statement: "~75.7% of tagged bugs lived >1 year; 19 lived >10 years (7 UAF)",
		Measured: fmt.Sprintf(">1y %.1f%%, >10y %d (uaf %d)",
			longShare, lt.OverDecade, lt.DecadeUAF),
		Holds: longShare > 70 && lt.OverDecade >= 19 && lt.DecadeUAF >= 7,
	})

	fs = append(fs, Finding{
		ID:        5,
		Statement: "23 bugs span from v2.6.y to v5.x/v6.x",
		Measured:  fmt.Sprintf("full-span %d", lt.FullSpan),
		Holds:     lt.FullSpan >= 20 && lt.FullSpan <= 26,
	})
	return fs
}

// --- classifier validation ---

// Accuracy compares the mined classification against generation ground
// truth. The paper classified by hand; our ground truth lets agreement be
// measured (the corresponding ablation for manual-analysis error).
type Accuracy struct {
	Total       int
	Correct     int
	UADTotal    int
	UADCorrect  int
	PerCategory map[gitlog.Category]int // misclassifications by true category
}

// ClassifierAccuracy measures taxonomy and UAD agreement with ground truth.
func (s *Study) ClassifierAccuracy() Accuracy {
	acc := Accuracy{PerCategory: map[gitlog.Category]int{}}
	for _, rec := range s.Result.Dataset {
		bt := s.History.Truth[rec.Commit.ID]
		if bt == nil {
			continue
		}
		acc.Total++
		if rec.Category == bt.Category {
			acc.Correct++
		} else {
			acc.PerCategory[bt.Category]++
		}
		if bt.Category == gitlog.MisplacingDec {
			acc.UADTotal++
			if rec.IsUAD == bt.IsUAD {
				acc.UADCorrect++
			}
		}
	}
	return acc
}

// LifetimeLine is one bug's span in release-index space — the raw data
// behind Figure 3's per-bug lines.
type LifetimeLine struct {
	IntroIndex int
	FixIndex   int
	Impact     string
}

// LifetimeLines returns one line per Fixes-tagged bug, sorted by
// introduction index then fix index (the paper sorts bugs by the version
// they were introduced in).
func (s *Study) LifetimeLines() []LifetimeLine {
	var out []LifetimeLine
	for _, r := range s.Result.Dataset {
		if !r.HasFixesTag {
			continue
		}
		iv := s.History.VersionByTag(r.IntroVersion)
		fv := s.History.VersionByTag(r.FixVersion)
		if iv == nil || fv == nil {
			continue
		}
		out = append(out, LifetimeLine{
			IntroIndex: iv.Index, FixIndex: fv.Index, Impact: r.Impact,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IntroIndex != out[j].IntroIndex {
			return out[i].IntroIndex < out[j].IntroIndex
		}
		if out[i].FixIndex != out[j].FixIndex {
			return out[i].FixIndex < out[j].FixIndex
		}
		return out[i].Impact < out[j].Impact
	})
	return out
}
