package study

import (
	"hash/fnv"
	"sort"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/refsim"
)

// Status is the patch-committing outcome of a new-bug report (§6.4).
type Status string

// Statuses. CFM = confirmed by the oracle (developer-accepted in the paper),
// PR = patch rejected (the pinned-UAD cases), NR = no maintainer response
// (modelled socially: a deterministic subset of otherwise-confirmed
// reports), FP = false positive (checker report on a seeded bait).
const (
	CFM Status = "CFM"
	PR  Status = "PR"
	NR  Status = "NR"
	FP  Status = "FP"
)

// NoResponsePerMille calibrates the modelled maintainer non-response rate
// (paper: 111 of 351 reports drew no response ≈ 31.6%).
const NoResponsePerMille = 316

// NewBug is one evaluated detection.
type NewBug struct {
	Planned *corpus.PlannedBug // nil for bait hits
	Report  core.Report
	Status  Status
	Verdict refsim.Verdict
}

// NewBugStudy evaluates checker reports against the corpus ground truth,
// replaying each witness through refsim (§6.2–§6.4, Tables 4 and 5).
type NewBugStudy struct {
	Bugs   []NewBug
	Missed []corpus.PlannedBug
}

// EvaluateNewBugs matches reports to the corpus plan, confirms them
// dynamically, and assigns statuses. Confirmation replays run with the
// default worker count (GOMAXPROCS); use EvaluateNewBugsWorkers to pin it.
func EvaluateNewBugs(c *corpus.Corpus, reports []core.Report) *NewBugStudy {
	return EvaluateNewBugsWorkers(c, reports, 0)
}

// EvaluateNewBugsWorkers is EvaluateNewBugs with an explicit worker count
// for the batched refsim confirmation stage. Each witness replay is
// independent and pure, so the study is identical at any worker count.
func EvaluateNewBugsWorkers(c *corpus.Corpus, reports []core.Report, workers int) *NewBugStudy {
	type key struct{ fn, pattern string }
	byKey := map[key][]core.Report{}
	for _, r := range reports {
		k := key{r.Function, string(r.Pattern)}
		byKey[k] = append(byKey[k], r)
	}
	baited := map[string]bool{}
	for _, b := range c.Baits {
		baited[b.Function] = true
	}

	st := &NewBugStudy{}
	// Pass 1: match planned bugs to reports and batch up the confirmation
	// jobs; the replays fan out across workers, verdicts come back in plan
	// order.
	type matched struct {
		pb *corpus.PlannedBug
		r  core.Report
	}
	var ms []matched
	var jobs []refsim.Job
	for i := range c.Planned {
		pb := &c.Planned[i]
		rs := byKey[key{pb.Function, string(pb.Pattern)}]
		if len(rs) == 0 {
			st.Missed = append(st.Missed, *pb)
			continue
		}
		r := rs[0]
		ms = append(ms, matched{pb: pb, r: r})
		jobs = append(jobs, refsim.Job{
			Witness: r.Witness,
			Claim: refsim.Claim{
				Impact: pb.Impact, Object: r.Object,
				AllowEscaped: r.Pattern == core.P6,
			},
		})
	}
	verdicts := refsim.ReplayAll(jobs, workers)
	// Pass 2: assign statuses from the verdicts, in plan order.
	for i, m := range ms {
		verdict := verdicts[i]
		nb := NewBug{Planned: m.pb, Report: m.r, Verdict: verdict}
		switch {
		case !verdict.Confirmed && m.pb.Kind == corpus.KindPinnedUAD:
			nb.Status = PR
		case !verdict.Confirmed:
			nb.Status = NR // cannot demonstrate the impact: no reply
		case noResponse(m.pb.Function):
			nb.Status = NR
		default:
			nb.Status = CFM
		}
		st.Bugs = append(st.Bugs, nb)
	}
	// Bait hits become false positives (one per bait function).
	seenBait := map[string]bool{}
	for _, r := range reports {
		if !baited[r.Function] || seenBait[r.Function] {
			continue
		}
		seenBait[r.Function] = true
		st.Bugs = append(st.Bugs, NewBug{Report: r, Status: FP})
	}
	return st
}

// noResponse deterministically models maintainer silence.
func noResponse(fn string) bool {
	h := fnv.New32a()
	h.Write([]byte(fn))
	return h.Sum32()%1000 < NoResponsePerMille
}

// --- Table 4 ---

// Table4Row aggregates one subsystem.
type Table4Row struct {
	Subsystem string
	NewBugs   int
	Leak      int
	UAF       int
	NPD       int
	CFM       int
	PR        int
	NR        int
	FP        int
}

// Table4 builds the per-subsystem summary (false positives are listed but,
// as in the paper, not counted into NewBugs).
func (st *NewBugStudy) Table4() []Table4Row {
	rows := map[string]*Table4Row{}
	get := func(sub string) *Table4Row {
		if r, ok := rows[sub]; ok {
			return r
		}
		r := &Table4Row{Subsystem: sub}
		rows[sub] = r
		return r
	}
	for _, nb := range st.Bugs {
		if nb.Status == FP {
			get(nb.Report.Subsystem()).FP++
			continue
		}
		row := get(nb.Planned.Subsystem)
		row.NewBugs++
		switch nb.Planned.Impact {
		case "Leak":
			row.Leak++
		case "UAF":
			row.UAF++
		case "NPD":
			row.NPD++
		}
		switch nb.Status {
		case CFM:
			row.CFM++
		case PR:
			row.PR++
		case NR:
			row.NR++
		}
	}
	var out []Table4Row
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Subsystem < out[j].Subsystem })
	return out
}

// Total sums Table 4 rows.
func Total(rows []Table4Row) Table4Row {
	t := Table4Row{Subsystem: "Total"}
	for _, r := range rows {
		t.NewBugs += r.NewBugs
		t.Leak += r.Leak
		t.UAF += r.UAF
		t.NPD += r.NPD
		t.CFM += r.CFM
		t.PR += r.PR
		t.NR += r.NR
		t.FP += r.FP
	}
	return t
}

// --- Table 5 ---

// APICount is one bug-caused API with its frequency.
type APICount struct {
	API   string
	Count int
}

// Table5Row details one module.
type Table5Row struct {
	Subsystem string
	Module    string
	TopAPIs   []APICount // descending, capped at 2 as in the paper
	Patterns  map[core.Pattern]int
	Bugs      int
	Confirmed int
	Rejected  int
	NoReply   int
}

// Table5 builds the per-module detail table.
func (st *NewBugStudy) Table5() []Table5Row {
	type mkey struct{ sub, mod string }
	rows := map[mkey]*Table5Row{}
	for _, nb := range st.Bugs {
		if nb.Status == FP {
			continue
		}
		k := mkey{nb.Planned.Subsystem, nb.Planned.Module}
		row := rows[k]
		if row == nil {
			row = &Table5Row{
				Subsystem: k.sub, Module: k.mod,
				Patterns: map[core.Pattern]int{},
			}
			rows[k] = row
		}
		row.Bugs++
		row.Patterns[nb.Report.Pattern]++
		switch nb.Status {
		case CFM:
			row.Confirmed++
		case PR:
			row.Rejected++
		case NR:
			row.NoReply++
		}
		apiIdx := -1
		for i, ac := range row.TopAPIs {
			if ac.API == nb.Planned.API {
				apiIdx = i
			}
		}
		if apiIdx >= 0 {
			row.TopAPIs[apiIdx].Count++
		} else {
			row.TopAPIs = append(row.TopAPIs, APICount{API: nb.Planned.API, Count: 1})
		}
	}
	var out []Table5Row
	for _, r := range rows {
		sort.Slice(r.TopAPIs, func(i, j int) bool {
			if r.TopAPIs[i].Count != r.TopAPIs[j].Count {
				return r.TopAPIs[i].Count > r.TopAPIs[j].Count
			}
			return r.TopAPIs[i].API < r.TopAPIs[j].API
		})
		if len(r.TopAPIs) > 2 {
			r.TopAPIs = r.TopAPIs[:2]
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Subsystem != out[j].Subsystem {
			return out[i].Subsystem < out[j].Subsystem
		}
		return out[i].Module < out[j].Module
	})
	return out
}

// --- §7: Lessons From New Bugs ---

// Lessons aggregates the evaluated new bugs by the paper's four root-cause
// families (§7): implementation deviation (P1+P2), hidden refcounting
// (P3+P4), overlooked locations (P5+P6+P7), and future risks (P8+P9).
type Lessons struct {
	Deviation  int // P1 return-error + P2 return-NULL
	ReturnNull int // the P2 subset
	SmartLoop  int // P3 (hidden, complete)
	HiddenAPI  int // P4 (hidden inc/dec)
	MissingInc int // P4's missing-increase (UAF) subset
	ErrorPath  int // P5
	InterPair  int // P6
	DirectFree int // P7
	UAD        int // P8
	Escape     int // P9
}

// LessonSummary computes the §7 breakdown from the evaluated bugs.
func (st *NewBugStudy) LessonSummary() Lessons {
	var l Lessons
	for _, nb := range st.Bugs {
		if nb.Status == FP || nb.Planned == nil {
			continue
		}
		switch nb.Report.Pattern {
		case core.P1:
			l.Deviation++
		case core.P2:
			l.Deviation++
			l.ReturnNull++
		case core.P3:
			l.SmartLoop++
		case core.P4:
			l.HiddenAPI++
			if nb.Planned.Kind == corpus.KindMissingGet {
				l.MissingInc++
			}
		case core.P5:
			l.ErrorPath++
		case core.P6:
			l.InterPair++
		case core.P7:
			l.DirectFree++
		case core.P8:
			l.UAD++
		case core.P9:
			l.Escape++
		}
	}
	return l
}
