package study

import (
	"testing"

	"repro/internal/apidb"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/gitlog"
	"repro/internal/mine"
)

func buildStudy(t *testing.T) *Study {
	t.Helper()
	h := gitlog.Generate(corpus.Spec{Seed: 1, Background: 2000})
	res := mine.Mine(h, apidb.New())
	return New(h, res)
}

func TestGrowthTrend(t *testing.T) {
	s := buildStudy(t)
	trend := s.GrowthTrend()
	if len(trend) != 18 { // 2005..2022
		t.Fatalf("years = %d", len(trend))
	}
	if trend[0].Year != 2005 || trend[len(trend)-1].Year != 2022 {
		t.Errorf("range = %d..%d", trend[0].Year, trend[len(trend)-1].Year)
	}
	if trend[len(trend)-1].Cumulative != gitlog.TotalBugs {
		t.Errorf("cumulative = %d", trend[len(trend)-1].Cumulative)
	}
	// Growth: the last third must dwarf the first third (Figure 1 shape).
	early, late := 0, 0
	for _, yc := range trend {
		if yc.Year <= 2010 {
			early += yc.Count
		}
		if yc.Year >= 2017 {
			late += yc.Count
		}
	}
	if late < early*3 {
		t.Errorf("growth shape off: early=%d late=%d", early, late)
	}
}

func TestTable2Shares(t *testing.T) {
	s := buildStudy(t)
	t2 := s.Classification()
	if t2.Total != gitlog.TotalBugs {
		t.Fatalf("total = %d", t2.Total)
	}
	leakPct := 100 * float64(t2.LeakCount) / float64(t2.Total)
	if leakPct < 69 || leakPct > 74 {
		t.Errorf("leak share = %.1f%%, want ~71.7%%", leakPct)
	}
	intraPct := 100 * float64(t2.IntraDec) / float64(t2.Total)
	if intraPct < 55 || intraPct > 60 {
		t.Errorf("intra share = %.1f%%, want ~57.1%%", intraPct)
	}
	uadPct := 100 * float64(t2.UADCount) / float64(t2.Total)
	if uadPct < 8 || uadPct > 10.5 {
		t.Errorf("uad share = %.1f%%, want ~9.1%%", uadPct)
	}
}

func TestDistributionShape(t *testing.T) {
	s := buildStudy(t)
	dist := s.Distribution()
	if dist[0].Subsystem != "drivers" {
		t.Errorf("top subsystem = %s", dist[0].Subsystem)
	}
	var maxDensity SubsystemStat
	for _, d := range dist {
		if d.Density > maxDensity.Density {
			maxDensity = d
		}
	}
	if maxDensity.Subsystem != "block" {
		t.Errorf("highest density = %s (%.3f), want block", maxDensity.Subsystem, maxDensity.Density)
	}
}

func TestLifetimes(t *testing.T) {
	s := buildStudy(t)
	lt := s.Lifetimes()
	if lt.Tagged != gitlog.FixesTagged {
		t.Errorf("tagged = %d", lt.Tagged)
	}
	if lt.FullSpan != gitlog.FullSpanBugs {
		t.Errorf("full-span = %d, want %d", lt.FullSpan, gitlog.FullSpanBugs)
	}
	if lt.OverDecade < gitlog.DecadeBugs {
		t.Errorf("decade = %d", lt.OverDecade)
	}
	if lt.MajorSpans["v4.x->v5.x"] == 0 {
		t.Error("no v4->v5 spans recorded")
	}
}

func TestAllFindingsHold(t *testing.T) {
	s := buildStudy(t)
	for _, f := range s.Findings() {
		if !f.Holds {
			t.Errorf("Finding %d does not hold: %s (measured %s)", f.ID, f.Statement, f.Measured)
		}
	}
}

// --- new-bug evaluation (Tables 4 and 5) ---

type headerProvider map[string]string

func (m headerProvider) ReadFile(path string) (string, bool) {
	if s, ok := m[path]; ok {
		return s, true
	}
	for p, s := range m {
		if len(p) > len(path) && p[len(p)-len(path)-1] == '/' && p[len(p)-len(path):] == path {
			return s, true
		}
	}
	return "", false
}

func evalNewBugs(t *testing.T) (*corpus.Corpus, *NewBugStudy) {
	t.Helper()
	c := corpus.Generate(corpus.Spec{Seed: 1})
	var sources []cpg.Source
	for _, f := range c.Files {
		sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
	}
	u := (&cpg.Builder{Headers: headerProvider(c.Headers)}).Build(sources)
	reports := core.NewEngine().CheckUnit(u)
	return c, EvaluateNewBugs(c, reports)
}

func TestTable4Shape(t *testing.T) {
	c, st := evalNewBugs(t)
	if len(st.Missed) != 0 {
		t.Fatalf("missed %d planned bugs", len(st.Missed))
	}
	rows := st.Table4()
	total := Total(rows)
	if total.NewBugs != len(c.Planned) {
		t.Errorf("new bugs = %d, want %d", total.NewBugs, len(c.Planned))
	}
	if total.FP != len(c.Baits) {
		t.Errorf("FP = %d, want %d", total.FP, len(c.Baits))
	}
	if total.NPD != 7 {
		t.Errorf("NPD = %d, want 7", total.NPD)
	}
	if total.PR != 3 {
		t.Errorf("PR = %d, want 3 (pinned UAD rejects)", total.PR)
	}
	// Confirmation shape: roughly two thirds confirmed (paper 240/351).
	confirmShare := float64(total.CFM) / float64(total.NewBugs)
	if confirmShare < 0.55 || confirmShare > 0.8 {
		t.Errorf("CFM share = %.2f, want ~0.68", confirmShare)
	}
	// Subsystem ordering: arch and drivers dominate (96% in the paper).
	bySub := map[string]Table4Row{}
	for _, r := range rows {
		bySub[r.Subsystem] = r
	}
	if got := bySub["arch"].NewBugs + bySub["drivers"].NewBugs; got < total.NewBugs*9/10 {
		t.Errorf("arch+drivers = %d of %d", got, total.NewBugs)
	}
}

func TestTable5Shape(t *testing.T) {
	_, st := evalNewBugs(t)
	rows := st.Table5()
	byMod := map[string]Table5Row{}
	for _, r := range rows {
		byMod[r.Subsystem+"/"+r.Module] = r
	}
	arm := byMod["arch/arm"]
	if arm.Bugs != 50 {
		t.Errorf("arch/arm bugs = %d, want 50", arm.Bugs)
	}
	if arm.Patterns[core.P4] != 42 {
		t.Errorf("arch/arm P4 = %d, want 42", arm.Patterns[core.P4])
	}
	clk := byMod["drivers/clk"]
	if clk.Bugs != 37 {
		t.Errorf("drivers/clk bugs = %d, want 37", clk.Bugs)
	}
	if len(clk.TopAPIs) == 0 {
		t.Fatal("clk top APIs empty")
	}
	mfd := byMod["drivers/mfd"]
	if mfd.Patterns[core.P1] != 1 {
		t.Errorf("drivers/mfd P1 = %d, want 1", mfd.Patterns[core.P1])
	}
}

func TestStatusesDeterministic(t *testing.T) {
	_, a := evalNewBugs(t)
	_, b := evalNewBugs(t)
	if len(a.Bugs) != len(b.Bugs) {
		t.Fatal("evaluation not deterministic")
	}
	for i := range a.Bugs {
		if a.Bugs[i].Status != b.Bugs[i].Status {
			t.Fatalf("status differs at %d", i)
		}
	}
}

func TestClassifierAccuracyPerfectOnSynthetic(t *testing.T) {
	s := buildStudy(t)
	acc := s.ClassifierAccuracy()
	if acc.Total != gitlog.TotalBugs || acc.Correct != acc.Total {
		t.Fatalf("accuracy = %d/%d (misses by category: %v)", acc.Correct, acc.Total, acc.PerCategory)
	}
	if acc.UADCorrect != acc.UADTotal || acc.UADTotal == 0 {
		t.Fatalf("UAD accuracy = %d/%d", acc.UADCorrect, acc.UADTotal)
	}
}

func TestLessonSummaryMatchesPlanTotals(t *testing.T) {
	c, st := evalNewBugs(t)
	l := st.LessonSummary()
	perPattern := map[corpus.PatternID]int{}
	missingGet := 0
	for _, b := range c.Planned {
		perPattern[b.Pattern]++
		if b.Kind == corpus.KindMissingGet {
			missingGet++
		}
	}
	if l.Deviation != perPattern["P1"]+perPattern["P2"] {
		t.Errorf("deviation = %d", l.Deviation)
	}
	if l.ReturnNull != perPattern["P2"] {
		t.Errorf("return-null = %d, want %d (paper found 7)", l.ReturnNull, perPattern["P2"])
	}
	if l.SmartLoop != perPattern["P3"] || l.HiddenAPI != perPattern["P4"] {
		t.Errorf("hidden: loop %d api %d", l.SmartLoop, l.HiddenAPI)
	}
	if l.MissingInc != missingGet {
		t.Errorf("missing-inc = %d, want %d (paper found 16)", l.MissingInc, missingGet)
	}
	if l.UAD != perPattern["P8"] || l.Escape != perPattern["P9"] {
		t.Errorf("future risks: uad %d escape %d", l.UAD, l.Escape)
	}
}

func TestLifetimeLines(t *testing.T) {
	s := buildStudy(t)
	lines := s.LifetimeLines()
	if len(lines) != gitlog.FixesTagged {
		t.Fatalf("lines = %d, want %d", len(lines), gitlog.FixesTagged)
	}
	for i, l := range lines {
		if l.FixIndex < l.IntroIndex-20 { // same-year stable interleave tolerance
			t.Fatalf("line %d fixes before intro: %+v", i, l)
		}
		if i > 0 && lines[i].IntroIndex < lines[i-1].IntroIndex {
			t.Fatal("lines not sorted by introduction")
		}
	}
}
