package study

import "repro/internal/corpus"

// ReleaseTrendRow is the longitudinal view of an evolving corpus at one
// release snapshot: how many seeded bugs are live in that release, how many
// were introduced by it, and how many were fixed by it. Summed over a
// window, Introduced - Fixed equals the live-count delta — the synthetic
// analogue of the paper's observation that refcounting bugs accumulate
// faster than they are fixed.
type ReleaseTrendRow struct {
	Tag        string
	Live       int
	Introduced int
	Fixed      int
}

// ReleaseTrend computes the per-release bug trend from a release set's
// ground truth (corpus.ReleaseSet.Truth).
func ReleaseTrend(truth []corpus.ReleaseBug, tags []string) []ReleaseTrendRow {
	rows := make([]ReleaseTrendRow, len(tags))
	for r, tag := range tags {
		rows[r].Tag = tag
		for _, b := range truth {
			if b.Intro <= r && r < b.Fix {
				rows[r].Live++
			}
			if b.Intro == r {
				rows[r].Introduced++
			}
			if b.Fix == r {
				rows[r].Fixed++
			}
		}
	}
	return rows
}
