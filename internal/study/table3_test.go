package study

import (
	"testing"

	"repro/internal/corpus"

	"repro/internal/gitlog"
	"repro/internal/word2vec"
)

func computeT3(t *testing.T) Table3 {
	t.Helper()
	h := gitlog.Generate(corpus.Spec{Seed: 1, Background: 4000})
	return ComputeTable3(h, word2vec.Config{Dim: 32, Epochs: 2, Seed: 5})
}

func TestTable3Shape(t *testing.T) {
	t3 := computeT3(t)

	findGet := t3.At("get", "find")
	findPut := t3.At("put", "find")
	foreachGet := t3.At("get", "foreach")
	parseRefcount := t3.At("refcount", "parse")

	// Paper Table 3: find↔get is the standout (0.73) because find-like
	// APIs call get-named APIs; find↔put is also high (0.58); the iterator
	// keyword barely co-occurs with refcounting words.
	if findGet <= foreachGet {
		t.Errorf("find~get %.3f <= foreach~get %.3f", findGet, foreachGet)
	}
	if findGet < 0.2 {
		t.Errorf("find~get = %.3f, want strong", findGet)
	}
	if findPut < 0.1 {
		t.Errorf("find~put = %.3f, want positive", findPut)
	}
	_ = parseRefcount // present in the matrix; no constraint beyond bounds

	// unhold is (nearly) absent from kernel vocabulary: lowest row.
	for _, col := range Table3ColKeys {
		if v := t3.At("unhold", col); v > 0.15 {
			t.Errorf("unhold~%s = %.3f, want ~0", col, v)
		}
	}

	// find~get should be the strongest (row get, col find) cell overall —
	// allow a small tolerance for training noise.
	best := -2.0
	for r := range t3.Rows {
		for c := range t3.Cols {
			if t3.Sim[r][c] > best {
				best = t3.Sim[r][c]
			}
		}
	}
	if findGet < best-0.25 {
		t.Errorf("find~get %.3f is far from the max cell %.3f", findGet, best)
	}
}

func TestTable3Bounds(t *testing.T) {
	t3 := computeT3(t)
	if len(t3.Sim) != len(Table3RowKeys) {
		t.Fatalf("rows = %d", len(t3.Sim))
	}
	for r := range t3.Sim {
		if len(t3.Sim[r]) != len(Table3ColKeys) {
			t.Fatalf("cols = %d", len(t3.Sim[r]))
		}
		for c := range t3.Sim[r] {
			if v := t3.Sim[r][c]; v < -1.01 || v > 1.01 {
				t.Errorf("sim[%d][%d] = %v out of range", r, c, v)
			}
		}
	}
}

func TestSentencesExtraction(t *testing.T) {
	h := gitlog.Generate(corpus.Spec{Seed: 1, Background: 50})
	all := Sentences(h, 0)
	if len(all) < 100 {
		t.Fatalf("sentences = %d", len(all))
	}
	limited := Sentences(h, 10)
	if len(limited) > 12 {
		t.Errorf("limit not applied: %d", len(limited))
	}
}
