package study

import (
	"repro/internal/gitlog"
	"repro/internal/word2vec"
)

// Table3RowKeys are the refcounting-API keywords of Table 3 (rows).
var Table3RowKeys = []string{
	"refcount", "increase", "get", "hold", "grab", "retain",
	"decrease", "put", "unhold", "drop", "release",
}

// Table3ColKeys are the bug-caused API keywords of Table 3 (columns).
var Table3ColKeys = []string{"foreach", "find", "parse", "open", "probe", "register"}

// Table3 holds the keyword similarity matrix.
type Table3 struct {
	Rows  []string
	Cols  []string
	Sim   [][]float64 // Sim[r][c]
	Model *word2vec.Model
}

// Sentences extracts the word2vec training corpus from a history: one
// sentence per commit subject and body line (the paper trained on >1M commit
// logs "including the code and comment text").
func Sentences(h *gitlog.History, limit int) [][]string {
	var out [][]string
	for i := range h.Commits {
		if limit > 0 && len(out) >= limit {
			break
		}
		c := &h.Commits[i]
		if s := word2vec.Tokenize(c.Subject); len(s) > 1 {
			out = append(out, s)
		}
		if s := word2vec.Tokenize(c.Body); len(s) > 1 {
			out = append(out, s)
		}
		for _, d := range c.Diff {
			if s := word2vec.Tokenize(d.Text); len(s) > 1 {
				out = append(out, s)
			}
		}
	}
	return out
}

// ComputeTable3 trains CBOW on the history text and fills the similarity
// matrix.
func ComputeTable3(h *gitlog.History, cfg word2vec.Config) Table3 {
	model := word2vec.Train(Sentences(h, 0), cfg)
	t := Table3{Rows: Table3RowKeys, Cols: Table3ColKeys, Model: model}
	t.Sim = make([][]float64, len(t.Rows))
	for r, rk := range t.Rows {
		t.Sim[r] = make([]float64, len(t.Cols))
		for c, ck := range t.Cols {
			t.Sim[r][c] = model.Similarity(rk, ck)
		}
	}
	return t
}

// At returns the similarity for a (row keyword, column keyword) pair.
func (t Table3) At(row, col string) float64 {
	for r, rk := range t.Rows {
		if rk != row {
			continue
		}
		for c, ck := range t.Cols {
			if ck == col {
				return t.Sim[r][c]
			}
		}
	}
	return 0
}
