package study

import (
	"strings"
	"testing"

	"repro/internal/apidb"
	"repro/internal/corpus"
	"repro/internal/gitlog"
	"repro/internal/mine"
)

// TestReleaseTrend pins the evolving-corpus trend for the canonical spec
// (seed 1, 4 releases on the kernel timeline): live counts per release, and
// the conservation law Live[r] = Live[r-1] + Introduced[r] - Fixed[r].
func TestReleaseTrend(t *testing.T) {
	rs := corpus.GenerateReleases(corpus.Spec{Seed: 1, Releases: 4}, gitlog.ReleaseTags(4))
	rows := ReleaseTrend(rs.Truth(), rs.Tags)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}

	want := []ReleaseTrendRow{
		{Tag: "v2.6.12", Live: 86, Introduced: 86, Fixed: 0},
		{Tag: "v3.2", Live: 168, Introduced: 97, Fixed: 15},
		{Tag: "v4.12", Live: 227, Introduced: 86, Fixed: 27},
		{Tag: "v6.1", Live: 264, Introduced: 83, Fixed: 46},
	}
	for r, row := range rows {
		if row != want[r] {
			t.Errorf("row %d = %+v, want %+v", r, row, want[r])
		}
	}
	for r := 1; r < len(rows); r++ {
		if got := rows[r-1].Live + rows[r].Introduced - rows[r].Fixed; got != rows[r].Live {
			t.Errorf("release %s: conservation broken: %d + %d - %d != %d",
				rows[r].Tag, rows[r-1].Live, rows[r].Introduced, rows[r].Fixed, rows[r].Live)
		}
	}
	// The paper's accumulation shape: bugs outlive their fixes, so the live
	// count grows monotonically across the window.
	for r := 1; r < len(rows); r++ {
		if rows[r].Live <= rows[r-1].Live {
			t.Errorf("live count not growing: %d then %d", rows[r-1].Live, rows[r].Live)
		}
	}
}

// majorOf folds a stable point tag (v2.6.14.1, v4.14.3) onto its major
// release (v2.6.14, v4.14), mirroring gitlog's tag scheme.
func majorOf(v string) string {
	parts := strings.Split(v, ".")
	if strings.HasPrefix(v, "v2.6.") && len(parts) > 3 {
		return strings.Join(parts[:3], ".")
	}
	if !strings.HasPrefix(v, "v2.6.") && len(parts) > 2 {
		return strings.Join(parts[:2], ".")
	}
	return v
}

// TestMinePerReleaseCounts pins the mined dataset's per-release fix counts:
// every record carries a FixVersion, the versions bucket onto the major
// timeline, and the per-major counts reproduce the paper's growth curve
// (recent majors fix many more refcounting bugs than early ones).
func TestMinePerReleaseCounts(t *testing.T) {
	h := gitlog.Generate(corpus.Spec{Seed: 1, Background: 2000})
	res := mine.Mine(h, apidb.New())

	perMajor := map[string]int{}
	for _, b := range res.Dataset {
		if b.FixVersion == "" {
			t.Fatalf("record %s has no FixVersion", b.Commit.ID)
		}
		perMajor[majorOf(b.FixVersion)]++
	}
	if len(perMajor) < 10 {
		t.Fatalf("fixes bucket into only %d majors, want a spread across the timeline", len(perMajor))
	}
	total := 0
	for _, n := range perMajor {
		total += n
	}
	if total != len(res.Dataset) {
		t.Errorf("per-major counts sum to %d, dataset has %d", total, len(res.Dataset))
	}
	// Pinned buckets for seed 1, background 2000 — regression pins on the
	// version axis of the mining pipeline.
	for tag, n := range map[string]int{"v2.6.14": 6, "v3.17": 52, "v5.14": 148} {
		if perMajor[tag] != n {
			t.Errorf("fixes landing in %s = %d, want %d", tag, perMajor[tag], n)
		}
	}
	if perMajor["v5.14"] < 10*perMajor["v2.6.14"] {
		t.Errorf("growth shape off: v2.6.14=%d v5.14=%d", perMajor["v2.6.14"], perMajor["v5.14"])
	}
}
