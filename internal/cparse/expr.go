package cparse

import (
	"repro/internal/cast"
	"repro/internal/clex"
)

// Expression grammar, standard C precedence ladder:
//   expr        := assign (',' assign)*
//   assign      := ternary (ASSIGNOP assign)?
//   ternary     := or ('?' expr ':' ternary)?
//   or .. mul   := binary levels
//   unary       := prefix ops, casts, sizeof
//   postfix     := calls, members, indexing, ++/--
//   primary     := ident | literal | '(' expr ')'

func (p *Parser) parseExpr() cast.Expr {
	e := p.parseAssignExpr()
	for p.at(clex.Comma) {
		pos := p.next().Pos
		y := p.parseAssignExpr()
		c := &cast.CommaExpr{X: e, Y: y}
		c.StartPos = pos
		e = c
	}
	return e
}

var assignOps = map[clex.Kind]bool{
	clex.Assign: true, clex.PlusAssign: true, clex.MinusAssign: true,
	clex.StarAssign: true, clex.SlashAssign: true, clex.PercentAssign: true,
	clex.AmpAssign: true, clex.PipeAssign: true, clex.CaretAssign: true,
	clex.ShlAssign: true, clex.ShrAssign: true,
}

func (p *Parser) parseAssignExpr() cast.Expr {
	if !p.enterNest() {
		return p.nestOverflowExpr()
	}
	defer p.leaveNest()
	lhs := p.parseTernary()
	if assignOps[p.peek().Kind] {
		op := p.next()
		rhs := p.parseAssignExpr()
		a := p.ast.assigns.New(cast.AssignExpr{Op: op.Kind, LHS: lhs, RHS: rhs})
		if lhs != nil {
			a.StartPos = lhs.Pos()
		} else {
			a.StartPos = op.Pos
		}
		return a
	}
	return lhs
}

func (p *Parser) parseTernary() cast.Expr {
	cond := p.parseBinary(0)
	if p.at(clex.Question) {
		p.next()
		var then cast.Expr
		if !p.at(clex.Colon) { // GNU a ?: b
			then = p.parseExpr()
		}
		p.expect(clex.Colon)
		els := p.parseTernary()
		c := &cast.CondExpr{Cond: cond, Then: then, Else: els}
		if cond != nil {
			c.StartPos = cond.Pos()
		}
		return c
	}
	return cond
}

// binLevels defines binary operator precedence from loosest to tightest.
var binLevels = [][]clex.Kind{
	{clex.OrOr},
	{clex.AndAnd},
	{clex.Pipe},
	{clex.Caret},
	{clex.Amp},
	{clex.Eq, clex.Ne},
	{clex.Lt, clex.Gt, clex.Le, clex.Ge},
	{clex.Shl, clex.Shr},
	{clex.Plus, clex.Minus},
	{clex.Star, clex.Slash, clex.Percent},
}

func (p *Parser) parseBinary(level int) cast.Expr {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	e := p.parseBinary(level + 1)
	for {
		k := p.peek().Kind
		match := false
		for _, op := range binLevels[level] {
			if k == op {
				match = true
				break
			}
		}
		if !match {
			return e
		}
		opTok := p.next()
		y := p.parseBinary(level + 1)
		b := p.ast.binaries.New(cast.BinaryExpr{Op: opTok.Kind, X: e, Y: y})
		if e != nil {
			b.StartPos = e.Pos()
		} else {
			b.StartPos = opTok.Pos
		}
		e = b
	}
}

func (p *Parser) parseUnary() cast.Expr {
	if !p.enterNest() {
		return p.nestOverflowExpr()
	}
	defer p.leaveNest()
	t := p.peek()
	switch t.Kind {
	case clex.Plus, clex.Minus, clex.Not, clex.Tilde, clex.Star, clex.Amp,
		clex.Inc, clex.Dec:
		p.next()
		x := p.parseUnary()
		u := p.ast.unaries.New(cast.UnaryExpr{Op: t.Kind, X: x})
		u.StartPos = t.Pos
		return u
	case clex.Keyword:
		if t.Text == "sizeof" {
			p.next()
			s := &cast.SizeofExpr{}
			s.StartPos = t.Pos
			if p.at(clex.LParen) && p.typeAfterLParen() {
				p.next()
				s.Type = p.parseType()
				p.expect(clex.RParen)
			} else {
				s.X = p.parseUnary()
			}
			return s
		}
	case clex.LParen:
		// Cast? '(' type ')' unary — but not '(' type ')' '{' (compound lit,
		// treated as cast of init list).
		if p.typeAfterLParen() {
			p.next()
			ty := p.parseType()
			p.expect(clex.RParen)
			c := &cast.CastExpr{Type: ty}
			c.StartPos = t.Pos
			if p.at(clex.LBrace) {
				c.X = p.parseInitializer()
			} else {
				c.X = p.parseUnary()
			}
			return c
		}
	}
	return p.parsePostfix()
}

// typeAfterLParen reports whether '(' is followed by a type and then ')'.
func (p *Parser) typeAfterLParen() bool {
	if !p.at(clex.LParen) {
		return false
	}
	save := p.pos
	defer func() { p.pos = save }()
	p.next()
	if !p.atTypeStart() {
		return false
	}
	p.parseType()
	return p.at(clex.RParen)
}

func (p *Parser) parsePostfix() cast.Expr {
	e := p.parsePrimary()
	for {
		t := p.peek()
		switch t.Kind {
		case clex.LParen:
			p.next()
			call := p.ast.calls.New(cast.CallExpr{Fun: e})
			if e != nil {
				call.StartPos = e.Pos()
			} else {
				call.StartPos = t.Pos
			}
			// Provenance: take from the callee token stream.
			if fe, ok := e.(*cast.Ident); ok {
				call.Origin = fe.TokenOrigin
			}
			if !p.at(clex.RParen) && !p.atEOF() {
				call.Args = p.argWindow()
			}
			for !p.at(clex.RParen) && !p.atEOF() {
				call.Args = append(call.Args, p.parseAssignExpr())
				if !p.accept(clex.Comma) {
					break
				}
			}
			p.expect(clex.RParen)
			e = call
		case clex.LBracket:
			p.next()
			idx := p.parseExpr()
			p.expect(clex.RBracket)
			ie := p.ast.indexes.New(cast.IndexExpr{X: e, Index: idx})
			if e != nil {
				ie.StartPos = e.Pos()
			}
			e = ie
		case clex.Dot, clex.Arrow:
			p.next()
			name := p.expect(clex.Ident)
			me := p.ast.members.New(cast.MemberExpr{X: e, Name: name.Text, Arrow: t.Kind == clex.Arrow})
			if e != nil {
				me.StartPos = e.Pos()
			}
			e = me
		case clex.Inc, clex.Dec:
			p.next()
			ue := p.ast.unaries.New(cast.UnaryExpr{Op: t.Kind, X: e, Postfix: true})
			if e != nil {
				ue.StartPos = e.Pos()
			}
			e = ue
		default:
			return e
		}
	}
}

func (p *Parser) parsePrimary() cast.Expr {
	t := p.peek()
	switch t.Kind {
	case clex.Ident:
		p.next()
		id := p.ast.idents.New(cast.Ident{Name: t.Text, TokenOrigin: t.Origin})
		id.StartPos = t.Pos
		return id
	case clex.IntLit, clex.FloatLit, clex.CharLit, clex.StringLit:
		p.next()
		l := p.ast.lits.New(cast.Lit{Kind: t.Kind, Text: t.Text})
		l.StartPos = t.Pos
		// Adjacent string literal concatenation.
		for t.Kind == clex.StringLit && p.at(clex.StringLit) {
			nxt := p.next()
			l.Text += nxt.Text
		}
		return l
	case clex.LParen:
		p.next()
		// GNU statement expression: ({ ... })
		if p.at(clex.LBrace) {
			p.skipBraces()
			p.expect(clex.RParen)
			id := p.ast.idents.New(cast.Ident{Name: "__stmt_expr__"})
			id.StartPos = t.Pos
			return id
		}
		inner := p.parseExpr()
		p.expect(clex.RParen)
		pe := p.ast.parens.New(cast.ParenExpr{X: inner})
		pe.StartPos = t.Pos
		return pe
	case clex.Keyword:
		// NULL-ish keywords occasionally land in expr position via macros;
		// treat a lone keyword as an identifier-like atom for robustness.
		if t.Text == "sizeof" {
			return p.parseUnary()
		}
		p.next()
		id := p.ast.idents.New(cast.Ident{Name: t.Text})
		id.StartPos = t.Pos
		return id
	default:
		p.errorf(t.Pos, "expected expression, found %s", t)
		p.next()
		id := p.ast.idents.New(cast.Ident{Name: "__error__"})
		id.StartPos = t.Pos
		return id
	}
}
