package cparse

import (
	"repro/internal/arena"
	"repro/internal/cast"
)

// astAlloc slab-allocates the AST node kinds that dominate a parse. The
// nodes live exactly as long as the cast.File that references them, so
// chunked bump allocation is the right regime: allocating a node costs a
// pointer bump, the heap sees O(chunks) allocations instead of O(nodes),
// and the chunks are collected together with the File. Rare node kinds
// (struct defs, typedefs, loops) stay on plain &T{} — slabbing them would
// add chunk overhead without moving the profile.
type astAlloc struct {
	idents    arena.Slab[cast.Ident]
	lits      arena.Slab[cast.Lit]
	calls     arena.Slab[cast.CallExpr]
	binaries  arena.Slab[cast.BinaryExpr]
	unaries   arena.Slab[cast.UnaryExpr]
	members   arena.Slab[cast.MemberExpr]
	parens    arena.Slab[cast.ParenExpr]
	assigns   arena.Slab[cast.AssignExpr]
	indexes   arena.Slab[cast.IndexExpr]
	exprStmts arena.Slab[cast.ExprStmt]
	declStmts arena.Slab[cast.DeclStmt]
	compounds arena.Slab[cast.CompoundStmt]
	ifs       arena.Slab[cast.IfStmt]
	returns   arena.Slab[cast.ReturnStmt]
}

func (a *astAlloc) setStats(st *arena.Stats) {
	a.idents.Stats = st
	a.lits.Stats = st
	a.calls.Stats = st
	a.binaries.Stats = st
	a.unaries.Stats = st
	a.members.Stats = st
	a.parens.Stats = st
	a.assigns.Stats = st
	a.indexes.Stats = st
	a.exprStmts.Stats = st
	a.declStmts.Stats = st
	a.compounds.Stats = st
	a.ifs.Stats = st
	a.returns.Stats = st
}
