package cparse

import (
	"repro/internal/cast"
	"repro/internal/clex"
)

func (p *Parser) parseCompound() *cast.CompoundStmt {
	open := p.expect(clex.LBrace)
	cs := p.ast.compounds.New(cast.CompoundStmt{})
	cs.StartPos = open.Pos
	cs.Origin = open.Origin
	cs.Stmts = p.stmtWindow()
	for !p.at(clex.RBrace) && !p.atEOF() {
		start := p.pos
		s := p.parseStmt()
		if s != nil {
			cs.Stmts = append(cs.Stmts, s)
		}
		if p.pos == start {
			p.errorf(p.peek().Pos, "unexpected token %s in block", p.peek())
			p.next()
		}
	}
	p.expect(clex.RBrace)
	return cs
}

func (p *Parser) parseStmt() cast.Stmt {
	if !p.enterNest() {
		p.skipToSemi()
		return nil
	}
	defer p.leaveNest()
	t := p.peek()
	switch {
	case t.Kind == clex.LBrace:
		return p.parseCompound()
	case t.Kind == clex.Semi:
		p.next()
		s := &cast.EmptyStmt{}
		s.StartPos = t.Pos
		s.Origin = t.Origin
		return s
	case t.Kind == clex.Keyword:
		switch t.Text {
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "do":
			return p.parseDoWhile()
		case "switch":
			return p.parseSwitch()
		case "case", "default":
			return p.parseCase()
		case "return":
			return p.parseReturn()
		case "break":
			p.next()
			p.expect(clex.Semi)
			s := &cast.BreakStmt{}
			s.StartPos = t.Pos
			s.Origin = t.Origin
			return s
		case "continue":
			p.next()
			p.expect(clex.Semi)
			s := &cast.ContinueStmt{}
			s.StartPos = t.Pos
			s.Origin = t.Origin
			return s
		case "goto":
			p.next()
			lbl := p.expect(clex.Ident)
			p.expect(clex.Semi)
			s := &cast.GotoStmt{Label: lbl.Text}
			s.StartPos = t.Pos
			s.Origin = t.Origin
			return s
		case "__asm__":
			p.next()
			for p.atText(clex.Keyword, "volatile") {
				p.next()
			}
			p.skipParens()
			p.accept(clex.Semi)
			s := &cast.EmptyStmt{}
			s.StartPos = t.Pos
			return s
		}
		if p.atTypeStart() {
			return p.parseDeclStmt()
		}
		// Unknown keyword in statement position: recover.
		p.errorf(t.Pos, "unexpected keyword %q", t.Text)
		p.skipToSemi()
		return nil
	case t.Kind == clex.Ident && p.peekAt(1).Kind == clex.Colon &&
		p.peekAt(2).Kind != clex.Colon:
		// Label: ident ':' stmt. (Guard against a?b:c only matters in expr.)
		p.next()
		p.next()
		s := &cast.LabelStmt{Name: t.Text}
		s.StartPos = t.Pos
		s.Origin = t.Origin
		if !p.at(clex.RBrace) {
			s.Stmt = p.parseStmt()
		}
		return s
	case p.atTypeStart():
		return p.parseDeclStmt()
	default:
		return p.parseExprStmt()
	}
}

func (p *Parser) parseIf() cast.Stmt {
	t := p.next() // if
	s := p.ast.ifs.New(cast.IfStmt{})
	s.StartPos = t.Pos
	s.Origin = t.Origin
	p.expect(clex.LParen)
	s.Cond = p.parseExpr()
	p.expect(clex.RParen)
	s.Then = p.parseStmt()
	if p.acceptText(clex.Keyword, "else") {
		s.Else = p.parseStmt()
	}
	return s
}

func (p *Parser) parseFor() cast.Stmt {
	t := p.next() // for
	s := &cast.ForStmt{}
	s.StartPos = t.Pos
	s.Origin = t.Origin
	p.expect(clex.LParen)
	if !p.at(clex.Semi) {
		if p.atTypeStart() {
			s.Init = p.parseDeclStmt() // consumes ';'
		} else {
			e := p.parseExpr()
			es := p.ast.exprStmts.New(cast.ExprStmt{X: e})
			es.StartPos = e.Pos()
			es.Origin = t.Origin
			s.Init = es
			p.expect(clex.Semi)
		}
	} else {
		p.next()
	}
	if !p.at(clex.Semi) {
		s.Cond = p.parseExpr()
	}
	p.expect(clex.Semi)
	if !p.at(clex.RParen) {
		s.Post = p.parseExpr()
	}
	p.expect(clex.RParen)
	s.Body = p.parseStmt()
	return s
}

func (p *Parser) parseWhile() cast.Stmt {
	t := p.next() // while
	s := &cast.WhileStmt{}
	s.StartPos = t.Pos
	s.Origin = t.Origin
	p.expect(clex.LParen)
	s.Cond = p.parseExpr()
	p.expect(clex.RParen)
	s.Body = p.parseStmt()
	return s
}

func (p *Parser) parseDoWhile() cast.Stmt {
	t := p.next() // do
	s := &cast.DoWhileStmt{}
	s.StartPos = t.Pos
	s.Origin = t.Origin
	s.Body = p.parseStmt()
	if !p.acceptText(clex.Keyword, "while") {
		p.errorf(p.peek().Pos, "expected while after do body")
	}
	p.expect(clex.LParen)
	s.Cond = p.parseExpr()
	p.expect(clex.RParen)
	p.expect(clex.Semi)
	return s
}

func (p *Parser) parseSwitch() cast.Stmt {
	t := p.next() // switch
	s := &cast.SwitchStmt{}
	s.StartPos = t.Pos
	s.Origin = t.Origin
	p.expect(clex.LParen)
	s.Tag = p.parseExpr()
	p.expect(clex.RParen)
	s.Body = p.parseStmt()
	return s
}

func (p *Parser) parseCase() cast.Stmt {
	t := p.next() // case | default
	s := &cast.CaseStmt{IsDefault: t.Text == "default"}
	s.StartPos = t.Pos
	s.Origin = t.Origin
	if !s.IsDefault {
		s.Value = p.parseTernary()
		// GNU case ranges: case A ... B:
		if p.accept(clex.Ellipsis) {
			p.parseTernary()
		}
	}
	p.expect(clex.Colon)
	return s
}

func (p *Parser) parseReturn() cast.Stmt {
	t := p.next() // return
	s := p.ast.returns.New(cast.ReturnStmt{})
	s.StartPos = t.Pos
	s.Origin = t.Origin
	if !p.at(clex.Semi) {
		s.Value = p.parseExpr()
	}
	p.expect(clex.Semi)
	return s
}

// parseDeclStmt parses local declarations. Multiple declarators become a
// compound of DeclStmts so each name keeps its own initializer.
func (p *Parser) parseDeclStmt() cast.Stmt {
	startTok := p.peek()
	p.skipQualifiers()
	ty := p.parseType()

	var decls []cast.Stmt
	for {
		dTy := ty
		var name clex.Token
		if p.at(clex.LParen) && p.peekAt(1).Kind == clex.Star {
			pos := p.peek().Pos
			n, fnTy := p.parseFuncPtrDeclarator(dTy)
			name = clex.Token{Kind: clex.Ident, Text: n, Pos: pos}
			dTy = fnTy
		} else {
			if !p.at(clex.Ident) {
				p.errorf(p.peek().Pos, "expected declarator, found %s", p.peek())
				p.skipToSemi()
				break
			}
			name = p.next()
			for p.at(clex.LBracket) {
				p.skipBrackets()
			}
		}
		d := p.ast.declStmts.New(cast.DeclStmt{Name: name.Text, Type: dTy})
		d.StartPos = startTok.Pos
		d.Origin = startTok.Origin
		if p.accept(clex.Assign) {
			d.Init = p.parseInitializer()
		}
		decls = append(decls, d)
		if p.accept(clex.Comma) {
			// `int a, *b;` — later declarators re-read stars.
			ty2 := ty
			ty2.Stars = ty.Stars
			for p.accept(clex.Star) {
				ty2.Stars++
			}
			ty = ty2
			continue
		}
		break
	}
	p.expect(clex.Semi)
	switch len(decls) {
	case 0:
		return nil
	case 1:
		return decls[0]
	default:
		cs := p.ast.compounds.New(cast.CompoundStmt{Stmts: decls})
		cs.StartPos = startTok.Pos
		cs.Origin = startTok.Origin
		return cs
	}
}

func (p *Parser) parseExprStmt() cast.Stmt {
	t := p.peek()
	e := p.parseExpr()
	p.expect(clex.Semi)
	if e == nil {
		return nil
	}
	s := p.ast.exprStmts.New(cast.ExprStmt{X: e})
	s.StartPos = t.Pos
	s.Origin = t.Origin
	return s
}
