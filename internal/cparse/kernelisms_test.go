package cparse

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/cpp"
)

// parseNoErr preprocesses + parses and fails on any error.
func parseNoErr(t *testing.T, src string) *cast.File {
	t.Helper()
	pp := cpp.New(nil)
	res := pp.Process("k.c", src)
	for _, e := range res.Errors {
		t.Fatalf("cpp: %v", e)
	}
	f, errs := ParseFile("k.c", res.Tokens)
	for _, e := range errs {
		t.Fatalf("parse: %v", e)
	}
	return f
}

func TestKernelAttributeSoup(t *testing.T) {
	f := parseNoErr(t, `
static int __init __attribute__((cold)) early_setup(void)
{
	return 0;
}
static void __exit late_teardown(void) { }
static u32 __read_mostly cached_rate;
int __must_check fetch_rate(struct clk *c);
`)
	names := map[string]bool{}
	for _, d := range f.Decls {
		switch x := d.(type) {
		case *cast.FuncDef:
			names[x.Name] = true
		case *cast.VarDecl:
			names[x.Name] = true
		}
	}
	for _, want := range []string{"early_setup", "late_teardown", "cached_rate", "fetch_rate"} {
		if !names[want] {
			t.Errorf("%s not parsed (decls: %v)", want, names)
		}
	}
}

func TestSwitchFallthroughAndRanges(t *testing.T) {
	f := parseNoErr(t, `
int classify(int c)
{
	switch (c) {
	case 0 ... 9:
		return 1;
	case 'a':
	case 'b':
		c++;
	default:
		break;
	}
	return c;
}
`)
	fd := f.Decls[0].(*cast.FuncDef)
	cases := 0
	cast.Walk(fd, func(n cast.Node) bool {
		if _, ok := n.(*cast.CaseStmt); ok {
			cases++
		}
		return true
	})
	if cases != 4 {
		t.Errorf("cases = %d, want 4", cases)
	}
}

func TestDoWhileZeroMacroIdiom(t *testing.T) {
	f := parseNoErr(t, `
#define CHECK_AND_BAIL(cond, label) \
	do { \
		if (cond) \
			goto label; \
	} while (0)
int f(int x)
{
	CHECK_AND_BAIL(x < 0, out);
	return x;
out:
	return -EINVAL;
}
`)
	fd := f.Decls[0].(*cast.FuncDef)
	var sawDo, sawGoto bool
	cast.Walk(fd, func(n cast.Node) bool {
		switch n.(type) {
		case *cast.DoWhileStmt:
			sawDo = true
		case *cast.GotoStmt:
			sawGoto = true
		}
		return true
	})
	if !sawDo || !sawGoto {
		t.Errorf("do=%v goto=%v", sawDo, sawGoto)
	}
}

func TestStatementExpression(t *testing.T) {
	// GNU statement expressions appear in kernel min()/max(); they are
	// skipped as opaque atoms but must not derail the parser.
	f := parseNoErr(t, `
int f(int a, int b)
{
	int m = ({ int _x = a; _x > b ? _x : b; });
	return m;
}
`)
	fd := f.Decls[0].(*cast.FuncDef)
	if len(fd.Body.Stmts) != 2 {
		t.Errorf("stmts = %d", len(fd.Body.Stmts))
	}
}

func TestNestedFunctionPointersInLocals(t *testing.T) {
	f := parseNoErr(t, `
typedef int (*handler_t)(int);
int dispatch(int ev)
{
	int (*fn)(int) = lookup_handler(ev);
	handler_t alias = fn;
	if (!fn)
		return -ENOSYS;
	return fn(ev);
}
`)
	fd := fnByName(t, f, "dispatch")
	ds, ok := fd.Body.Stmts[0].(*cast.DeclStmt)
	if !ok || !ds.Type.FuncPtr || ds.Name != "fn" {
		t.Fatalf("decl = %+v", fd.Body.Stmts[0])
	}
}

func TestArrayAndBitfieldMembers(t *testing.T) {
	f := parseNoErr(t, `
struct regs {
	u32 window[16];
	unsigned int enabled : 1;
	unsigned int mode : 3;
	char name[32];
	struct kref ref;
};
`)
	sd := f.Decls[0].(*cast.StructDecl)
	for _, want := range []string{"window", "enabled", "mode", "name", "ref"} {
		if _, ok := sd.FieldType(want); !ok {
			t.Errorf("field %s missing", want)
		}
	}
}

func TestConditionalCompilationVariants(t *testing.T) {
	for _, variant := range []struct {
		define string
		want   string
	}{
		{"#define CONFIG_PM 1\n", "pm_path"},
		{"", "plain_path"},
	} {
		src := variant.define + `
int setup(void)
{
#ifdef CONFIG_PM
	return pm_path();
#else
	return plain_path();
#endif
}
`
		f := parseNoErr(t, src)
		fd := f.Decls[0].(*cast.FuncDef)
		calls := cast.Calls(fd)
		if len(calls) != 1 || calls[0].Callee() != variant.want {
			t.Errorf("define=%q calls=%v", variant.define, calls)
		}
	}
}

func TestRealisticDriverFile(t *testing.T) {
	// A full little driver exercising most constructs at once.
	f := parseNoErr(t, `
#define DRV_NAME "widget"
#define for_each_widget(w, list) \
	for (w = widget_first(list); w; w = widget_next(list, w))

struct widget_priv {
	struct device *dev;
	struct kref ref;
	u32 flags;
	int (*notify)(struct widget_priv *, int);
};

static struct widget_priv *the_widget;

static int widget_read_reg(struct widget_priv *p, u32 reg, u32 *val)
{
	if (!p || !val)
		return -EINVAL;
	*val = readl(p->dev, reg);
	return 0;
}

static int widget_configure(struct widget_priv *p)
{
	u32 v;
	int err, i;

	for (i = 0; i < 8; i++) {
		err = widget_read_reg(p, 0x10 + i * 4, &v);
		if (err)
			goto fail;
		switch (v & 0x3) {
		case 0:
			continue;
		case 1:
			p->flags |= (1 << i);
			break;
		default:
			err = -EIO;
			goto fail;
		}
	}
	return 0;
fail:
	dev_err(p->dev, DRV_NAME ": config failed");
	return err;
}

static int widget_probe(struct platform_device *pdev)
{
	struct widget_priv *p = devm_kzalloc(pdev, sizeof(*p));
	int err;

	if (!p)
		return -ENOMEM;
	err = widget_configure(p);
	if (err)
		return err;
	the_widget = p;
	return 0;
}

static struct platform_driver widget_driver = {
	.probe = widget_probe,
};
`)
	var fns []string
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDef); ok {
			fns = append(fns, fd.Name)
		}
	}
	joined := strings.Join(fns, ",")
	for _, want := range []string{"widget_read_reg", "widget_configure", "widget_probe"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s in %s", want, joined)
		}
	}
	// The driver-ops binding must be visible.
	var vd *cast.VarDecl
	for _, d := range f.Decls {
		if v, ok := d.(*cast.VarDecl); ok && v.Name == "widget_driver" {
			vd = v
		}
	}
	if vd == nil || len(vd.Inits) != 1 || vd.Inits[0].Field != "probe" {
		t.Fatalf("widget_driver = %+v", vd)
	}
}

func TestTernaryGNUShorthand(t *testing.T) {
	f := parseNoErr(t, "int f(int a, int b) { return a ?: b; }")
	fd := f.Decls[0].(*cast.FuncDef)
	ret := fd.Body.Stmts[0].(*cast.ReturnStmt)
	if _, ok := ret.Value.(*cast.CondExpr); !ok {
		t.Fatalf("value = %T", ret.Value)
	}
}

func TestPointerArithmeticAndCasts(t *testing.T) {
	f := parseNoErr(t, `
void *advance(void *base, unsigned long off)
{
	char *p = (char *)base;
	return (void *)(p + off);
}
`)
	fd := f.Decls[0].(*cast.FuncDef)
	if fd.Ret.Base != "void" || fd.Ret.Stars != 1 {
		t.Errorf("ret = %v", fd.Ret)
	}
}
