package cparse

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/cpp"
)

// parse preprocesses and parses src, failing the test on any error.
func parse(t *testing.T, src string) *cast.File {
	t.Helper()
	pp := cpp.New(nil)
	res := pp.Process("test.c", src)
	for _, e := range res.Errors {
		t.Fatalf("cpp: %v", e)
	}
	f, errs := ParseFile("test.c", res.Tokens)
	for _, e := range errs {
		t.Fatalf("parse: %v", e)
	}
	return f
}

func fnByName(t *testing.T, f *cast.File, name string) *cast.FuncDef {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDef); ok && fd.Name == name {
			return fd
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

func TestSimpleFunction(t *testing.T) {
	f := parse(t, `
static int add(int a, int b)
{
	return a + b;
}
`)
	fd := fnByName(t, f, "add")
	if !fd.Static {
		t.Error("add should be static")
	}
	if fd.Ret.Base != "int" {
		t.Errorf("ret = %v", fd.Ret)
	}
	if len(fd.Params) != 2 || fd.Params[0].Name != "a" || fd.Params[1].Name != "b" {
		t.Errorf("params = %+v", fd.Params)
	}
	if len(fd.Body.Stmts) != 1 {
		t.Fatalf("body = %+v", fd.Body.Stmts)
	}
	ret, ok := fd.Body.Stmts[0].(*cast.ReturnStmt)
	if !ok {
		t.Fatalf("stmt = %T", fd.Body.Stmts[0])
	}
	if cast.ExprString(ret.Value) != "a + b" {
		t.Errorf("return expr = %q", cast.ExprString(ret.Value))
	}
}

func TestPointerTypesAndLocals(t *testing.T) {
	f := parse(t, `
struct device_node { int refcount; };
static struct device_node *find(struct device_node *from)
{
	struct device_node *np = from;
	const char *name = "x";
	unsigned long flags;
	return np;
}
`)
	fd := fnByName(t, f, "find")
	if fd.Ret.Base != "struct device_node" || fd.Ret.Stars != 1 {
		t.Errorf("ret = %v", fd.Ret)
	}
	if fd.Ret.StructName() != "device_node" {
		t.Errorf("struct name = %q", fd.Ret.StructName())
	}
	ds, ok := fd.Body.Stmts[0].(*cast.DeclStmt)
	if !ok || ds.Name != "np" || ds.Type.Stars != 1 {
		t.Fatalf("decl = %+v", fd.Body.Stmts[0])
	}
	if cast.ExprString(ds.Init) != "from" {
		t.Errorf("init = %q", cast.ExprString(ds.Init))
	}
}

func TestStructWithFuncPtrFields(t *testing.T) {
	f := parse(t, `
struct platform_driver {
	int (*probe)(struct platform_device *);
	int (*remove)(struct platform_device *);
	const char *name;
};
`)
	sd, ok := f.Decls[0].(*cast.StructDecl)
	if !ok {
		t.Fatalf("decl = %T", f.Decls[0])
	}
	if sd.Name != "platform_driver" || len(sd.Fields) != 3 {
		t.Fatalf("struct = %+v", sd)
	}
	probe, ok := sd.FieldType("probe")
	if !ok || !probe.FuncPtr {
		t.Errorf("probe = %+v", probe)
	}
	if name, ok := sd.FieldType("name"); !ok || name.Stars != 1 || name.Base != "char" {
		t.Errorf("name = %+v", name)
	}
}

func TestDesignatedInitializer(t *testing.T) {
	f := parse(t, `
struct platform_driver { int (*probe)(void); int (*remove)(void); };
static int foo_probe(void) { return 0; }
static int foo_remove(void) { return 0; }
static struct platform_driver foo_driver = {
	.probe = foo_probe,
	.remove = foo_remove,
};
`)
	var vd *cast.VarDecl
	for _, d := range f.Decls {
		if v, ok := d.(*cast.VarDecl); ok && v.Name == "foo_driver" {
			vd = v
		}
	}
	if vd == nil {
		t.Fatal("foo_driver not found")
	}
	if len(vd.Inits) != 2 {
		t.Fatalf("inits = %+v", vd.Inits)
	}
	if vd.Inits[0].Field != "probe" || cast.ExprString(vd.Inits[0].Value) != "foo_probe" {
		t.Errorf("init[0] = %+v", vd.Inits[0])
	}
}

func TestControlFlowStatements(t *testing.T) {
	f := parse(t, `
int classify(int x)
{
	int i;
	for (i = 0; i < 10; i++) {
		if (x == i)
			break;
		else
			continue;
	}
	while (x > 0)
		x--;
	do { x++; } while (x < 0);
	switch (x) {
	case 0:
		return 0;
	case 1:
	default:
		goto out;
	}
out:
	return x;
}
`)
	fd := fnByName(t, f, "classify")
	var kinds []string
	cast.Walk(fd, func(n cast.Node) bool {
		kinds = append(kinds, fmt.Sprintf("%T", n))
		return true
	})
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"ForStmt", "IfStmt", "BreakStmt", "ContinueStmt",
		"WhileStmt", "DoWhileStmt", "SwitchStmt", "CaseStmt", "GotoStmt", "LabelStmt"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s in walk: %s", want, joined)
		}
	}
}

func TestListing1NVMEM(t *testing.T) {
	// The paper's Listing 1 shape (missing-refcounting bug).
	f := parse(t, `
struct nvmem_device { int x; };
struct nvmem_device *__nvmem_device_get(void *data)
{
	struct device *dev;
	dev = bus_find_device(data);
	if (!dev)
		return 0;
	if (any_error)
		return error_code;
	return to_nvmem_device(dev);
}
`)
	fd := fnByName(t, f, "__nvmem_device_get")
	calls := cast.Calls(fd)
	var names []string
	for _, c := range calls {
		names = append(names, c.Callee())
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "bus_find_device") {
		t.Errorf("calls = %v", names)
	}
}

func TestListing3PMRuntime(t *testing.T) {
	f := parse(t, `
static int stm32_crc_remove(struct platform_device *pdev)
{
	struct stm32_crc *crc = platform_get_drvdata(pdev);
	int ret = pm_runtime_get_sync(crc->dev);
	if (ret < 0)
		return ret;
	return 0;
}
`)
	fd := fnByName(t, f, "stm32_crc_remove")
	ds, ok := fd.Body.Stmts[1].(*cast.DeclStmt)
	if !ok {
		t.Fatalf("stmt 1 = %T", fd.Body.Stmts[1])
	}
	call, ok := ds.Init.(*cast.CallExpr)
	if !ok || call.Callee() != "pm_runtime_get_sync" {
		t.Fatalf("init = %q", cast.ExprString(ds.Init))
	}
	if cast.ExprString(call.Args[0]) != "crc->dev" {
		t.Errorf("arg = %q", cast.ExprString(call.Args[0]))
	}
}

func TestSmartLoopProvenance(t *testing.T) {
	// Listing 4: macro-defined smartloop; the of_find_matching_node calls
	// must carry for_each_matching_node provenance after parsing.
	f := parse(t, `
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
static int brcmstb_pm_probe(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (cond)
			break;
	}
	return 0;
}
`)
	fd := fnByName(t, f, "brcmstb_pm_probe")
	var loopCalls int
	for _, c := range cast.Calls(fd) {
		if c.Callee() == "of_find_matching_node" {
			loopCalls++
			if !c.FromMacro("for_each_matching_node") {
				t.Errorf("call at %v lacks smartloop provenance: %v", c.Pos(), c.Origin)
			}
		}
	}
	if loopCalls != 2 {
		t.Errorf("of_find_matching_node calls = %d, want 2", loopCalls)
	}
	// The for statement itself originates from the macro.
	var sawFor bool
	cast.Walk(fd, func(n cast.Node) bool {
		if fs, ok := n.(*cast.ForStmt); ok {
			sawFor = true
			found := false
			for _, m := range fs.MacroOrigin() {
				if m == "for_each_matching_node" {
					found = true
				}
			}
			if !found {
				t.Errorf("for stmt origin = %v", fs.MacroOrigin())
			}
			// The break inside must NOT be macro-originated.
			cast.Walk(fs.Body, func(m cast.Node) bool {
				if bs, ok := m.(*cast.BreakStmt); ok {
					if len(bs.MacroOrigin()) != 0 {
						t.Errorf("break origin = %v", bs.MacroOrigin())
					}
				}
				return true
			})
		}
		return true
	})
	if !sawFor {
		t.Error("no for statement found")
	}
}

func TestExpressions(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a = b->c.d", "a = b->c.d"},
		{"x = (a + b) * c", "x = (a + b) * c"},
		{"p = &arr[i]", "p = &arr[i]"},
		{"v = *p++", "v = *p++"},
		{"f(a, g(b), c->d)", "f(a, g(b), c->d)"},
		{"x = cond ? y : z", "x = cond ? y : z"},
		{"n = sizeof(struct foo)", "n = sizeof(struct foo)"},
		{"mask = ~0x3 & flags | bit << 2", "mask = ~0x3 & flags | bit << 2"},
		{"ok = !err && ptr != 0", "ok = !err && ptr != 0"},
		{"x += y", "x += y"},
		{"q = (struct foo *)raw", "q = (struct foo*)raw"},
	}
	for _, c := range cases {
		f := parse(t, "void t(void) { "+c.src+"; }")
		fd := fnByName(t, f, "t")
		es, ok := fd.Body.Stmts[0].(*cast.ExprStmt)
		if !ok {
			t.Errorf("%q: stmt = %T", c.src, fd.Body.Stmts[0])
			continue
		}
		if got := cast.ExprString(es.X); got != c.want {
			t.Errorf("%q: got %q", c.src, got)
		}
	}
}

func TestTypedefRecognition(t *testing.T) {
	f := parse(t, `
typedef unsigned int mytype_t;
mytype_t g(mytype_t v)
{
	mytype_t local = v;
	return local;
}
`)
	fd := fnByName(t, f, "g")
	if fd.Ret.Base != "mytype_t" {
		t.Errorf("ret = %v", fd.Ret)
	}
	if ds, ok := fd.Body.Stmts[0].(*cast.DeclStmt); !ok || ds.Type.Base != "mytype_t" {
		t.Errorf("local decl = %+v", fd.Body.Stmts[0])
	}
}

func TestMultipleDeclarators(t *testing.T) {
	f := parse(t, "void t(void) { int a = 1, b = 2; }")
	fd := fnByName(t, f, "t")
	cs, ok := fd.Body.Stmts[0].(*cast.CompoundStmt)
	if !ok || len(cs.Stmts) != 2 {
		t.Fatalf("stmt = %+v", fd.Body.Stmts[0])
	}
	d0 := cs.Stmts[0].(*cast.DeclStmt)
	d1 := cs.Stmts[1].(*cast.DeclStmt)
	if d0.Name != "a" || d1.Name != "b" {
		t.Errorf("names = %q %q", d0.Name, d1.Name)
	}
}

func TestErrorRecovery(t *testing.T) {
	// A bogus construct must not hide the following function.
	pp := cpp.New(nil)
	res := pp.Process("t.c", `
@@@ bogus @@@ ;
int good(void) { return 1; }
`)
	f, errs := ParseFile("t.c", res.Tokens)
	if len(errs) == 0 {
		t.Error("expected parse errors")
	}
	found := false
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDef); ok && fd.Name == "good" {
			found = true
		}
	}
	if !found {
		t.Error("recovery lost the good function")
	}
}

func TestPrototypeVsDefinition(t *testing.T) {
	f := parse(t, `
int declared_only(int x);
int defined(int x) { return x; }
`)
	proto := fnByName(t, f, "declared_only")
	if proto.Body != nil {
		t.Error("prototype should have nil body")
	}
	def := fnByName(t, f, "defined")
	if def.Body == nil {
		t.Error("definition should have body")
	}
}

func TestGotoErrorPattern(t *testing.T) {
	// Classic kernel error-handling shape.
	f := parse(t, `
int init(void)
{
	int err;
	err = setup_a();
	if (err)
		goto fail_a;
	err = setup_b();
	if (err)
		goto fail_b;
	return 0;
fail_b:
	teardown_a();
fail_a:
	return err;
}
`)
	fd := fnByName(t, f, "init")
	var labels, gotos []string
	cast.Walk(fd, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.LabelStmt:
			labels = append(labels, x.Name)
		case *cast.GotoStmt:
			gotos = append(gotos, x.Label)
		}
		return true
	})
	if len(labels) != 2 || len(gotos) != 2 {
		t.Errorf("labels = %v gotos = %v", labels, gotos)
	}
}

func TestBaseIdent(t *testing.T) {
	f := parse(t, "void t(void) { a->b.c[i] = 1; (*p).x = 2; }")
	fd := fnByName(t, f, "t")
	s0 := fd.Body.Stmts[0].(*cast.ExprStmt).X.(*cast.AssignExpr)
	if id := cast.BaseIdent(s0.LHS); id == nil || id.Name != "a" {
		t.Errorf("base of a->b.c[i] = %v", id)
	}
	s1 := fd.Body.Stmts[1].(*cast.ExprStmt).X.(*cast.AssignExpr)
	if id := cast.BaseIdent(s1.LHS); id == nil || id.Name != "p" {
		t.Errorf("base of (*p).x = %v", id)
	}
}

func TestStringConcatenation(t *testing.T) {
	f := parse(t, `const char *msg = "a" "b";`)
	vd := f.Decls[0].(*cast.VarDecl)
	lit := vd.Init.(*cast.Lit)
	if lit.Text != `"a""b"` {
		t.Errorf("lit = %q", lit.Text)
	}
}

func TestAnonymousNestedStruct(t *testing.T) {
	f := parse(t, `
struct outer {
	int a;
	struct { int b; int c; } inner;
	union { int d; long e; };
};
`)
	sd := f.Decls[0].(*cast.StructDecl)
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		if _, ok := sd.FieldType(name); !ok {
			t.Errorf("field %s missing (flattening failed): %+v", name, sd.Fields)
		}
	}
}

// Property: parsing always terminates and never panics on arbitrary token
// soup derived from printable bytes.
func TestQuickParserRobustness(t *testing.T) {
	f := func(raw []byte) bool {
		src := make([]byte, len(raw))
		for i, b := range raw {
			src[i] = byte(32 + int(b)%95)
			if b%13 == 0 {
				src[i] = '\n'
			}
		}
		toks, _ := clex.Tokenize("q.c", string(src), clex.Config{})
		p := New("q.c", toks)
		p.Parse() // must not hang or panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every call written as name(...) in a straight-line function body
// is discoverable via cast.Calls.
func TestQuickCallDiscovery(t *testing.T) {
	f := func(ns []uint8) bool {
		if len(ns) == 0 {
			return true
		}
		if len(ns) > 20 {
			ns = ns[:20]
		}
		var b strings.Builder
		b.WriteString("void t(void) {\n")
		var want []string
		for i, n := range ns {
			name := fmt.Sprintf("fn_%c%d", 'a'+n%26, i)
			want = append(want, name)
			fmt.Fprintf(&b, "\t%s(%d);\n", name, i)
		}
		b.WriteString("}\n")
		toks, _ := clex.Tokenize("q.c", b.String(), clex.Config{})
		file, errs := ParseFile("q.c", toks)
		if len(errs) != 0 {
			return false
		}
		calls := cast.Calls(file)
		if len(calls) != len(want) {
			return false
		}
		for i, c := range calls {
			if c.Callee() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
