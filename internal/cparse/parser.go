// Package cparse implements a recursive-descent parser for the kernel-C
// subset used by the checker pipeline.
//
// It consumes the preprocessed token stream from internal/cpp and produces an
// internal/cast tree. The parser is error-tolerant in the style of island
// parsing (the JOERN approach the paper builds on): a malformed declaration
// or statement is recorded as an error and skipped, and parsing continues at
// the next synchronization point, so one exotic construct never hides the
// rest of a file from the checkers.
package cparse

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/cast"
	"repro/internal/clex"
)

// builtinTypedefs are kernel typedef names the parser accepts as type
// starters without having seen their definitions.
var builtinTypedefs = map[string]bool{
	"u8": true, "u16": true, "u32": true, "u64": true,
	"s8": true, "s16": true, "s32": true, "s64": true,
	"__u8": true, "__u16": true, "__u32": true, "__u64": true,
	"size_t": true, "ssize_t": true, "bool": true, "loff_t": true,
	"dma_addr_t": true, "phys_addr_t": true, "gfp_t": true,
	"irqreturn_t": true, "atomic_t": true, "refcount_t": true,
	"uint8_t": true, "uint16_t": true, "uint32_t": true, "uint64_t": true,
	"int8_t": true, "int16_t": true, "int32_t": true, "int64_t": true,
	"uintptr_t": true, "intptr_t": true, "pid_t": true, "umode_t": true,
}

// ignorableQualifiers are kernel annotations that carry no meaning for the
// analysis and are skipped wherever they appear in declarations.
var ignorableQualifiers = map[string]bool{
	"__init": true, "__exit": true, "__user": true, "__iomem": true,
	"__must_check": true, "__maybe_unused": true, "__always_inline": true,
	"__cold": true, "__hot": true, "__weak": true, "__ref": true,
	"__devinit": true, "__devexit": true, "__percpu": true, "__rcu": true,
	"__force": true, "__read_mostly": true, "__initdata": true,
	"noinline": true, "notrace": true, "asmlinkage": true,
}

// Parser parses one token stream into a cast.File.
type Parser struct {
	toks []clex.Token
	pos  int
	file string

	typedefs map[string]bool
	errs     []error

	// nest counts recursive grammar depth (expressions, statements,
	// initializers, nested struct bodies). The cap keeps adversarial inputs
	// like ten thousand open parens or braces from overflowing the goroutine
	// stack; real kernel code nests a couple dozen levels at most.
	nest      int
	nestErred bool

	// ast slab-allocates the hot AST node kinds (see alloc.go). A Parser is
	// single-goroutine, so the slabs need no locking.
	ast astAlloc

	// argBuf and stmtBuf back call-argument and compound-statement slices
	// with small capacity-bounded windows (see the window helpers in
	// internal/cfg for the pattern); lists that outgrow their window migrate
	// to the heap via ordinary append reallocation.
	argBuf  []cast.Expr
	stmtBuf []cast.Stmt
}

const (
	argChunkLen  = 256
	stmtChunkLen = 512
)

// argWindow reserves a zero-length, capacity-4 view for a call's arguments.
func (p *Parser) argWindow() []cast.Expr {
	if cap(p.argBuf)-len(p.argBuf) < 4 {
		p.argBuf = make([]cast.Expr, 0, argChunkLen)
	}
	n := len(p.argBuf)
	p.argBuf = p.argBuf[:n+4]
	return p.argBuf[n : n : n+4]
}

// stmtWindow reserves a zero-length, capacity-8 view for a compound's
// statements.
func (p *Parser) stmtWindow() []cast.Stmt {
	if cap(p.stmtBuf)-len(p.stmtBuf) < 8 {
		p.stmtBuf = make([]cast.Stmt, 0, stmtChunkLen)
	}
	n := len(p.stmtBuf)
	p.stmtBuf = p.stmtBuf[:n+8]
	return p.stmtBuf[n : n : n+8]
}

const maxNest = 1024

// enterNest guards one level of grammar recursion; callers that get false
// must recover without recursing (see nestOverflowExpr).
func (p *Parser) enterNest() bool {
	if p.nest >= maxNest {
		if !p.nestErred {
			p.nestErred = true
			p.errorf(p.peek().Pos, "construct nests deeper than %d levels; skipping", maxNest)
		}
		return false
	}
	p.nest++
	return true
}

func (p *Parser) leaveNest() { p.nest-- }

// nestOverflowExpr consumes one token — guaranteeing progress for every
// enclosing parse loop — and yields an error placeholder expression.
func (p *Parser) nestOverflowExpr() cast.Expr {
	t := p.next()
	id := p.ast.idents.New(cast.Ident{Name: "__depth__"})
	id.StartPos = t.Pos
	return id
}

// New returns a parser over the given preprocessed tokens.
func New(file string, toks []clex.Token) *Parser {
	td := make(map[string]bool, len(builtinTypedefs))
	for k := range builtinTypedefs {
		td[k] = true
	}
	return &Parser{toks: toks, file: file, typedefs: td}
}

// Parse parses the whole translation unit. It always returns a File; errors
// are available from Errors.
func (p *Parser) Parse() *cast.File {
	f := &cast.File{Name: p.file}
	for !p.atEOF() {
		start := p.pos
		d := p.parseTopLevel()
		if d != nil {
			f.Decls = append(f.Decls, d)
		}
		if p.pos == start {
			// No progress: skip a token to guarantee termination.
			p.errorf(p.peek().Pos, "unexpected token %s", p.peek())
			p.pos++
		}
	}
	return f
}

// Errors returns the parse errors encountered.
func (p *Parser) Errors() []error { return p.errs }

// ParseFile is a convenience: parse preprocessed tokens into a file.
func ParseFile(file string, toks []clex.Token) (*cast.File, []error) {
	return ParseFileArena(file, toks, nil)
}

// ParseFileArena is ParseFile with slab-allocation counters reported into
// st (which may be nil). The returned tree owns its slab chunks; nothing is
// released — the counters only make the allocation win observable.
func ParseFileArena(file string, toks []clex.Token, st *arena.Stats) (*cast.File, []error) {
	p := New(file, toks)
	p.ast.setStats(st)
	f := p.Parse()
	return f, p.errs
}

// --- token helpers ---

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) peek() clex.Token {
	if p.atEOF() {
		return clex.Token{Kind: clex.EOF, Pos: clex.Pos{File: p.file}}
	}
	return p.toks[p.pos]
}

func (p *Parser) peekAt(n int) clex.Token {
	if p.pos+n >= len(p.toks) {
		return clex.Token{Kind: clex.EOF}
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() clex.Token {
	t := p.peek()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *Parser) at(k clex.Kind) bool { return p.peek().Kind == k }

func (p *Parser) atText(k clex.Kind, text string) bool {
	t := p.peek()
	return t.Kind == k && t.Text == text
}

func (p *Parser) accept(k clex.Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptText(k clex.Kind, text string) bool {
	if p.atText(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k clex.Kind) clex.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.peek().Pos, "expected %s, found %s", k, p.peek())
	return clex.Token{Kind: k, Pos: p.peek().Pos}
}

func (p *Parser) errorf(pos clex.Pos, format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// sync skips tokens until just past the next top-level ';' or balanced '}'.
func (p *Parser) sync() {
	depth := 0
	for !p.atEOF() {
		switch p.peek().Kind {
		case clex.LBrace:
			depth++
		case clex.RBrace:
			depth--
			if depth <= 0 {
				p.next()
				p.accept(clex.Semi)
				return
			}
		case clex.Semi:
			if depth == 0 {
				p.next()
				return
			}
		}
		p.next()
	}
}

// skipQualifiers consumes storage classes, qualifiers and kernel annotations,
// returning (static, inline) flags.
func (p *Parser) skipQualifiers() (isStatic, isInline, isConst bool) {
	for {
		t := p.peek()
		switch {
		case t.Kind == clex.Keyword && (t.Text == "static"):
			isStatic = true
			p.next()
		case t.Kind == clex.Keyword && (t.Text == "inline" || t.Text == "__inline__"):
			isInline = true
			p.next()
		case t.Kind == clex.Keyword && t.Text == "const":
			isConst = true
			p.next()
		case t.Kind == clex.Keyword && (t.Text == "extern" || t.Text == "volatile" ||
			t.Text == "register" || t.Text == "auto" || t.Text == "restrict"):
			p.next()
		case t.Kind == clex.Keyword && t.Text == "__attribute__":
			p.next()
			p.skipParens()
		case t.Kind == clex.Ident && ignorableQualifiers[t.Text]:
			p.next()
		default:
			return isStatic, isInline, isConst
		}
	}
}

// skipParens consumes a balanced (...) group if present.
func (p *Parser) skipParens() {
	if !p.at(clex.LParen) {
		return
	}
	depth := 0
	for !p.atEOF() {
		switch p.next().Kind {
		case clex.LParen:
			depth++
		case clex.RParen:
			depth--
			if depth == 0 {
				return
			}
		}
	}
}

// --- type recognition ---

var baseTypeKeywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "signed": true, "unsigned": true,
	"_Bool": true,
}

// atTypeStart reports whether the current token can begin a type.
func (p *Parser) atTypeStart() bool {
	t := p.peek()
	switch t.Kind {
	case clex.Keyword:
		if baseTypeKeywords[t.Text] || t.Text == "struct" || t.Text == "union" ||
			t.Text == "enum" || t.Text == "const" || t.Text == "volatile" ||
			t.Text == "typeof" || t.Text == "__typeof__" {
			return true
		}
		return false
	case clex.Ident:
		return p.typedefs[t.Text]
	}
	return false
}

// parseType parses a type specifier (without declarator): qualifiers, base
// type, and trailing stars.
func (p *Parser) parseType() cast.Type {
	var ty cast.Type
	for {
		t := p.peek()
		if t.Kind == clex.Keyword && (t.Text == "const" || t.Text == "volatile" || t.Text == "restrict") {
			if t.Text == "const" {
				ty.IsConst = true
			}
			p.next()
			continue
		}
		if t.Kind == clex.Ident && ignorableQualifiers[t.Text] {
			p.next()
			continue
		}
		break
	}
	t := p.peek()
	switch {
	case t.Kind == clex.Keyword && (t.Text == "struct" || t.Text == "union" || t.Text == "enum"):
		kw := p.next().Text
		name := ""
		if p.at(clex.Ident) {
			name = p.next().Text
		}
		ty.Base = kw + " " + name
	case t.Kind == clex.Keyword && (t.Text == "typeof" || t.Text == "__typeof__"):
		p.next()
		p.skipParens()
		ty.Base = "typeof"
	case t.Kind == clex.Keyword && baseTypeKeywords[t.Text]:
		base := p.next().Text
		// Multi-word types: unsigned long long int, etc.
		for p.peek().Kind == clex.Keyword && baseTypeKeywords[p.peek().Text] {
			base += " " + p.next().Text
		}
		ty.Base = base
	case t.Kind == clex.Ident && p.typedefs[t.Text]:
		ty.Base = p.next().Text
	default:
		p.errorf(t.Pos, "expected type, found %s", t)
		ty.Base = "int"
	}
	for {
		if p.accept(clex.Star) {
			ty.Stars++
			// const after star
			for p.atText(clex.Keyword, "const") || p.atText(clex.Keyword, "volatile") {
				p.next()
			}
			continue
		}
		break
	}
	// Attributes and kernel annotations between the type and the declarator
	// (`static int __init __attribute__((cold)) f(void)`).
	for {
		t := p.peek()
		if t.Kind == clex.Keyword && t.Text == "__attribute__" {
			p.next()
			p.skipParens()
			continue
		}
		if t.Kind == clex.Ident && ignorableQualifiers[t.Text] {
			p.next()
			continue
		}
		break
	}
	return ty
}

// --- top level ---

func (p *Parser) parseTopLevel() cast.Decl {
	switch {
	case p.at(clex.Semi):
		p.next()
		return nil
	case p.atText(clex.Keyword, "typedef"):
		return p.parseTypedef()
	}

	isStatic, isInline, _ := p.skipQualifiers()

	// struct/union definition or variable of struct type.
	if p.atText(clex.Keyword, "struct") || p.atText(clex.Keyword, "union") {
		// Lookahead: struct NAME { ... }  -> type definition (possibly
		// followed by a variable); struct NAME ident -> declaration.
		if p.peekAt(1).Kind == clex.Ident && p.peekAt(2).Kind == clex.LBrace {
			return p.parseStructDef()
		}
	}
	if p.atText(clex.Keyword, "enum") {
		if p.peekAt(1).Kind == clex.LBrace ||
			(p.peekAt(1).Kind == clex.Ident && p.peekAt(2).Kind == clex.LBrace) {
			return p.parseEnumDef()
		}
	}

	if !p.atTypeStart() {
		p.errorf(p.peek().Pos, "expected declaration, found %s", p.peek())
		p.sync()
		return nil
	}

	ty := p.parseType()

	// Function-pointer global: type (*name)(params) = ...;
	if p.at(clex.LParen) && p.peekAt(1).Kind == clex.Star {
		name, fnTy := p.parseFuncPtrDeclarator(ty)
		d := &cast.VarDecl{Name: name, Type: fnTy, Static: isStatic, NamePos: p.peek().Pos}
		if p.accept(clex.Assign) {
			d.Init = p.parseAssignExpr()
		}
		p.expect(clex.Semi)
		return d
	}

	if !p.at(clex.Ident) {
		// e.g. `struct foo;` forward declaration
		p.accept(clex.Semi)
		return nil
	}
	nameTok := p.next()

	if p.at(clex.LParen) {
		return p.parseFuncRest(ty, nameTok, isStatic, isInline)
	}
	return p.parseGlobalVarRest(ty, nameTok, isStatic)
}

func (p *Parser) parseTypedef() cast.Decl {
	p.next() // typedef
	pos := p.peek().Pos
	// typedef ... (*name)(...) — function pointer typedef.
	ty := p.parseType()
	if p.at(clex.LParen) && p.peekAt(1).Kind == clex.Star {
		name, fnTy := p.parseFuncPtrDeclarator(ty)
		p.expect(clex.Semi)
		p.typedefs[name] = true
		return &cast.TypedefDecl{Name: name, Type: fnTy, NamePos: pos}
	}
	if !p.at(clex.Ident) {
		p.errorf(p.peek().Pos, "malformed typedef")
		p.sync()
		return nil
	}
	name := p.next().Text
	// Skip array suffixes.
	for p.at(clex.LBracket) {
		p.skipBrackets()
	}
	p.expect(clex.Semi)
	p.typedefs[name] = true
	return &cast.TypedefDecl{Name: name, Type: ty, NamePos: pos}
}

func (p *Parser) skipBrackets() {
	depth := 0
	for !p.atEOF() {
		switch p.next().Kind {
		case clex.LBracket:
			depth++
		case clex.RBracket:
			depth--
			if depth == 0 {
				return
			}
		}
	}
}

func (p *Parser) parseStructDef() cast.Decl {
	kw := p.next() // struct | union
	name := p.expect(clex.Ident)
	d := &cast.StructDecl{Name: name.Text, Union: kw.Text == "union", NamePos: name.Pos}
	p.expect(clex.LBrace)
	for !p.at(clex.RBrace) && !p.atEOF() {
		start := p.pos
		p.parseStructField(d)
		if p.pos == start {
			p.next()
		}
	}
	p.expect(clex.RBrace)
	p.accept(clex.Semi)
	return d
}

func (p *Parser) parseStructField(d *cast.StructDecl) {
	if !p.enterNest() {
		p.skipToSemi()
		return
	}
	defer p.leaveNest()
	p.skipQualifiers()
	if p.at(clex.Semi) {
		p.next()
		return
	}
	// Anonymous nested struct/union: flatten its fields.
	if (p.atText(clex.Keyword, "struct") || p.atText(clex.Keyword, "union")) &&
		(p.peekAt(1).Kind == clex.LBrace ||
			(p.peekAt(1).Kind == clex.Ident && p.peekAt(2).Kind == clex.LBrace)) {
		p.next() // struct/union
		if p.at(clex.Ident) {
			p.next()
		}
		inner := &cast.StructDecl{}
		p.expect(clex.LBrace)
		for !p.at(clex.RBrace) && !p.atEOF() {
			start := p.pos
			p.parseStructField(inner)
			if p.pos == start {
				p.next()
			}
		}
		p.expect(clex.RBrace)
		// Named or anonymous member; either way we flatten for lookup.
		if p.at(clex.Ident) {
			p.next()
		}
		p.expect(clex.Semi)
		d.Fields = append(d.Fields, inner.Fields...)
		return
	}
	if !p.atTypeStart() {
		p.errorf(p.peek().Pos, "expected field type, found %s", p.peek())
		p.skipToSemi()
		return
	}
	ty := p.parseType()
	// Function-pointer field: ret (*name)(params);
	if p.at(clex.LParen) && p.peekAt(1).Kind == clex.Star {
		pos := p.peek().Pos
		name, fnTy := p.parseFuncPtrDeclarator(ty)
		d.Fields = append(d.Fields, cast.Field{Name: name, Type: fnTy, Pos: pos})
		p.expect(clex.Semi)
		return
	}
	for {
		if !p.at(clex.Ident) {
			p.errorf(p.peek().Pos, "expected field name, found %s", p.peek())
			p.skipToSemi()
			return
		}
		nt := p.next()
		fieldTy := ty
		for p.at(clex.LBracket) {
			p.skipBrackets()
		}
		// Bitfield width.
		if p.accept(clex.Colon) {
			p.parseAssignExpr()
		}
		d.Fields = append(d.Fields, cast.Field{Name: nt.Text, Type: fieldTy, Pos: nt.Pos})
		if p.accept(clex.Comma) {
			// Subsequent declarators may add stars.
			for p.accept(clex.Star) {
				fieldTy.Stars++
			}
			ty = fieldTy
			continue
		}
		break
	}
	p.expect(clex.Semi)
}

func (p *Parser) skipToSemi() {
	for !p.atEOF() && !p.at(clex.Semi) && !p.at(clex.RBrace) {
		if p.at(clex.LBrace) {
			p.skipBraces()
			continue
		}
		p.next()
	}
	p.accept(clex.Semi)
}

func (p *Parser) skipBraces() {
	depth := 0
	for !p.atEOF() {
		switch p.next().Kind {
		case clex.LBrace:
			depth++
		case clex.RBrace:
			depth--
			if depth == 0 {
				return
			}
		}
	}
}

func (p *Parser) parseEnumDef() cast.Decl {
	p.next() // enum
	d := &cast.EnumDecl{NamePos: p.peek().Pos}
	if p.at(clex.Ident) {
		d.Name = p.next().Text
	}
	p.expect(clex.LBrace)
	for !p.at(clex.RBrace) && !p.atEOF() {
		if p.at(clex.Ident) {
			d.Consts = append(d.Consts, p.next().Text)
			if p.accept(clex.Assign) {
				p.parseAssignExpr()
			}
		}
		if !p.accept(clex.Comma) {
			break
		}
	}
	p.expect(clex.RBrace)
	p.accept(clex.Semi)
	return d
}

// parseFuncPtrDeclarator parses `(*name)(params)` after the return type.
func (p *Parser) parseFuncPtrDeclarator(ret cast.Type) (string, cast.Type) {
	p.expect(clex.LParen)
	p.expect(clex.Star)
	name := ""
	if p.at(clex.Ident) {
		name = p.next().Text
	}
	p.expect(clex.RParen)
	fnTy := cast.Type{Base: ret.Base, Stars: ret.Stars, FuncPtr: true}
	if p.at(clex.LParen) {
		p.next()
		for !p.at(clex.RParen) && !p.atEOF() {
			if p.atTypeStart() {
				pt := p.parseType()
				if p.at(clex.Ident) {
					p.next()
				}
				fnTy.Params = append(fnTy.Params, pt)
			} else {
				p.next()
			}
			p.accept(clex.Comma)
		}
		p.expect(clex.RParen)
	}
	return name, fnTy
}

func (p *Parser) parseFuncRest(ret cast.Type, name clex.Token, isStatic, isInline bool) cast.Decl {
	fd := &cast.FuncDef{
		Name: name.Text, Ret: ret, Static: isStatic, Inline: isInline,
		NamePos: name.Pos,
	}
	p.expect(clex.LParen)
	for !p.at(clex.RParen) && !p.atEOF() {
		if p.at(clex.Ellipsis) {
			p.next()
			break
		}
		if p.atText(clex.Keyword, "void") && p.peekAt(1).Kind == clex.RParen {
			p.next()
			break
		}
		if !p.atTypeStart() {
			// K&R style or unparseable: skip to , or ).
			for !p.atEOF() && !p.at(clex.Comma) && !p.at(clex.RParen) {
				p.next()
			}
			p.accept(clex.Comma)
			continue
		}
		pt := p.parseType()
		prm := cast.Param{Type: pt, Pos: p.peek().Pos}
		if p.at(clex.LParen) && p.peekAt(1).Kind == clex.Star {
			prm.Name, prm.Type = p.parseFuncPtrDeclarator(pt)
		} else if p.at(clex.Ident) {
			prm.Name = p.next().Text
			for p.at(clex.LBracket) {
				p.skipBrackets()
			}
		}
		fd.Params = append(fd.Params, prm)
		if !p.accept(clex.Comma) {
			break
		}
	}
	p.expect(clex.RParen)
	p.skipQualifiers()

	if p.accept(clex.Semi) {
		return fd // prototype
	}
	if p.at(clex.LBrace) {
		fd.Body = p.parseCompound()
		return fd
	}
	p.errorf(p.peek().Pos, "expected function body or ';', found %s", p.peek())
	p.sync()
	return fd
}

func (p *Parser) parseGlobalVarRest(ty cast.Type, name clex.Token, isStatic bool) cast.Decl {
	d := &cast.VarDecl{Name: name.Text, Type: ty, Static: isStatic, NamePos: name.Pos}
	for p.at(clex.LBracket) {
		p.skipBrackets()
	}
	if p.accept(clex.Assign) {
		init := p.parseInitializer()
		if il, ok := init.(*cast.InitListExpr); ok && len(il.Fields) > 0 {
			d.Inits = il.Fields
		}
		d.Init = init
	}
	// `int a, b = 1;` at top level: accept and drop the extra declarators.
	for p.accept(clex.Comma) {
		for p.accept(clex.Star) {
		}
		if p.at(clex.Ident) {
			p.next()
		}
		for p.at(clex.LBracket) {
			p.skipBrackets()
		}
		if p.accept(clex.Assign) {
			p.parseInitializer()
		}
	}
	p.expect(clex.Semi)
	return d
}

// parseInitializer parses either a brace initializer list or an assignment
// expression.
func (p *Parser) parseInitializer() cast.Expr {
	if !p.enterNest() {
		return p.nestOverflowExpr()
	}
	defer p.leaveNest()
	if !p.at(clex.LBrace) {
		return p.parseAssignExpr()
	}
	pos := p.next().Pos // {
	lst := &cast.InitListExpr{}
	lst.StartPos = pos
	for !p.at(clex.RBrace) && !p.atEOF() {
		if p.at(clex.Dot) {
			p.next()
			fname := p.expect(clex.Ident)
			p.expect(clex.Assign)
			val := p.parseInitializer()
			lst.Fields = append(lst.Fields, cast.FieldInit{Field: fname.Text, Value: val, Pos: fname.Pos})
		} else if p.at(clex.LBracket) {
			// [idx] = val designated array initializer.
			p.skipBrackets()
			p.expect(clex.Assign)
			lst.Elems = append(lst.Elems, p.parseInitializer())
		} else {
			lst.Elems = append(lst.Elems, p.parseInitializer())
		}
		if !p.accept(clex.Comma) {
			break
		}
	}
	p.expect(clex.RBrace)
	return lst
}
