package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apidb"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/cpp"
	"repro/internal/gitlog"
	"repro/internal/mine"
	"repro/internal/study"
)

// TestDiskRoundTrip writes the corpus to a real directory (the refgen path),
// reads it back through the filesystem (the refcheck path), and verifies the
// analysis matches the in-memory run exactly.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := corpus.Generate(corpus.Spec{Seed: 1})

	for _, f := range c.Files {
		path := filepath.Join(dir, f.Path)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(f.Content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	headers := map[string]string{}
	for p, s := range c.Headers {
		path := filepath.Join(dir, p)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
		headers[p] = s
	}

	// Read back from disk.
	var sources []cpg.Source
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".c" {
			return err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		rel, _ := filepath.Rel(dir, path)
		sources = append(sources, cpg.Source{Path: rel, Content: string(data)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != len(c.Files) {
		t.Fatalf("read %d files, wrote %d", len(sources), len(c.Files))
	}

	diskUnit := (&cpg.Builder{Headers: cpp.MapFiles(headers)}).Build(sources)
	diskReports := core.NewEngine().CheckUnit(diskUnit)

	var memSources []cpg.Source
	for _, f := range c.Files {
		memSources = append(memSources, cpg.Source{Path: f.Path, Content: f.Content})
	}
	memUnit := (&cpg.Builder{Headers: cpp.MapFiles(c.Headers)}).Build(memSources)
	memReports := core.NewEngine().CheckUnit(memUnit)

	if len(diskReports) != len(memReports) {
		t.Fatalf("disk %d reports, memory %d", len(diskReports), len(memReports))
	}
	for i := range diskReports {
		if diskReports[i].Key() != memReports[i].Key() {
			t.Fatalf("report %d differs: %s vs %s",
				i, diskReports[i].String(), memReports[i].String())
		}
	}
}

// TestCrossSeedStability verifies the study's conclusions are properties of
// the generating distributions, not of one lucky seed: Findings 1–5 must
// hold for several independent histories, and the checker recall must stay
// total on several independent corpora.
func TestCrossSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-seed sweep is slow")
	}
	for _, seed := range []int64{2, 3, 4} {
		h := gitlog.Generate(corpus.Spec{Seed: seed, Background: 1500})
		res := mine.Mine(h, apidb.New())
		if len(res.Dataset) != gitlog.TotalBugs {
			t.Errorf("seed %d: dataset = %d", seed, len(res.Dataset))
		}
		for _, f := range study.New(h, res).Findings() {
			if !f.Holds {
				t.Errorf("seed %d: finding %d fails: %s", seed, f.ID, f.Measured)
			}
		}
	}
	for _, seed := range []int64{2, 3} {
		c := corpus.Generate(corpus.Spec{Seed: seed})
		var sources []cpg.Source
		for _, f := range c.Files {
			sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
		}
		u := (&cpg.Builder{Headers: cpp.MapFiles(c.Headers)}).Build(sources)
		reports := core.NewEngine().CheckUnit(u)
		nb := study.EvaluateNewBugs(c, reports)
		if len(nb.Missed) != 0 {
			t.Errorf("seed %d: missed %d planned bugs", seed, len(nb.Missed))
		}
		tot := study.Total(nb.Table4())
		if tot.FP != len(c.Baits) {
			t.Errorf("seed %d: FP = %d, want %d", seed, tot.FP, len(c.Baits))
		}
	}
}

// TestCorpusScaling checks that a much larger corpus (more clean code per
// module) still analyzes with full recall and unchanged precision — the
// checkers must not regress as the signal-to-noise ratio drops.
func TestCorpusScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is slow")
	}
	c := corpus.Generate(corpus.Spec{Seed: 1, CleanPerModule: 16})
	var sources []cpg.Source
	for _, f := range c.Files {
		sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
	}
	u := (&cpg.Builder{Headers: cpp.MapFiles(c.Headers)}).Build(sources)
	reports := core.NewEngine().CheckUnit(u)
	nb := study.EvaluateNewBugs(c, reports)
	if len(nb.Missed) != 0 {
		t.Fatalf("missed %d planned bugs at %0.1f KLOC", len(nb.Missed), c.KLOC())
	}
	planned := map[string]bool{}
	for _, b := range c.Planned {
		planned[b.Function] = true
	}
	baited := map[string]bool{}
	for _, b := range c.Baits {
		baited[b.Function] = true
	}
	for _, r := range reports {
		if !planned[r.Function] && !baited[r.Function] {
			t.Errorf("false positive on clean code: %s", r.String())
		}
	}
}

// TestReproducePipelineSmoke runs a compacted version of cmd/reproduce so a
// regression in any stage is caught by `go test ./...` without invoking the
// binary.
func TestReproducePipelineSmoke(t *testing.T) {
	h := gitlog.Generate(corpus.Spec{Seed: 1, Background: 1000})
	res := mine.Mine(h, apidb.New())
	s := study.New(h, res)
	for _, f := range s.Findings() {
		if !f.Holds {
			t.Errorf("finding %d fails: %s", f.ID, f.Measured)
		}
	}
	c := corpus.Generate(corpus.Spec{Seed: 1})
	var sources []cpg.Source
	for _, f := range c.Files {
		sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
	}
	u := (&cpg.Builder{Headers: cpp.MapFiles(c.Headers)}).Build(sources)
	nb := study.EvaluateNewBugs(c, core.NewEngine().CheckUnit(u))
	tot := study.Total(nb.Table4())
	if tot.NewBugs != len(c.Planned) || tot.PR != 3 || tot.FP != len(c.Baits) {
		t.Errorf("table 4 totals off: %+v", tot)
	}
	if !strings.Contains(tot.Subsystem, "Total") {
		t.Errorf("total row = %q", tot.Subsystem)
	}
}
