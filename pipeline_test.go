package repro

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/study"
)

// runPipeline executes the complete detection pipeline — preprocess + parse
// (sharded), CPG assembly, nine checkers, batched refsim confirmation — at
// the given worker count and returns the confirmed report list.
func runPipeline(workers int) []core.Report {
	c, sources := kernelCorpus()
	headers := map[string]string{}
	for p, s := range c.Headers {
		headers[p] = s
	}
	run, err := core.Analyze(context.Background(), core.Request{
		Sources: sources,
		Headers: headers,
		Options: core.Options{Workers: workers, Confirm: true},
	})
	if err != nil {
		panic("pipeline_test: " + err.Error())
	}
	return run.Reports
}

// TestFullPipelineParallelMatchesSequential runs the whole pipeline
// (parse → check → confirm) on the generated corpus with one worker and with
// eight; the report lists — including witnesses, positions, messages, and
// confirmation verdicts — must be byte-identical. This is the determinism
// guarantee the Workers knob advertises.
func TestFullPipelineParallelMatchesSequential(t *testing.T) {
	seq := runPipeline(1)
	par := runPipeline(8)
	if len(seq) == 0 {
		t.Fatal("sequential pipeline produced no reports; corpus broken?")
	}
	if len(seq) != len(par) {
		t.Fatalf("report counts differ: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("report %d differs:\n  seq: %+v\n  par: %+v", i, seq[i], par[i])
		}
		// Belt and braces: the rendered diagnostics must also agree.
		if s, p := seq[i].String(), par[i].String(); s != p {
			t.Errorf("report %d renders differently:\n  seq: %s\n  par: %s", i, s, p)
		}
	}
}

// TestFullPipelineWorkerSweep confirms the study downstream of the checkers
// (Table 4 aggregation over batched confirmation) is identical at every
// worker count, not just 1 vs 8.
func TestFullPipelineWorkerSweep(t *testing.T) {
	c, _ := kernelCorpus()
	var wantRows []study.Table4Row
	for _, workers := range []int{1, 2, 3, 8} {
		unit := buildUnitWorkers(workers)
		engine := core.NewEngine()
		engine.Workers = workers
		reports := engine.CheckUnit(unit)
		nb := study.EvaluateNewBugsWorkers(c, reports, workers)
		rows := nb.Table4()
		if wantRows == nil {
			wantRows = rows
			continue
		}
		if !reflect.DeepEqual(rows, wantRows) {
			t.Errorf("workers=%d: Table 4 differs from workers=1:\n  got  %+v\n  want %+v",
				workers, rows, wantRows)
		}
	}
}
