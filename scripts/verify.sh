#!/bin/sh
# verify.sh — the tier-1 gate: format check, vet, build, the full test
# suite, then the suite again under the race detector (the pipeline is
# parallel by default, so a data race is a correctness bug, not a flake),
# and finally the released-binary selftest with tracing enabled (the golden
# artifacts must hold with observability on, and the Chrome trace export
# must produce a loadable event stream).
# Run before every commit; CI runs the same commands.
set -e
cd "$(dirname "$0")/.."

unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./...

# End-to-end observability gate: the built binary must reproduce the blessed
# golden artifacts byte-for-byte while a full trace is being recorded, and
# the exported trace must be non-trivial Chrome trace-event JSON.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/refcheck" ./cmd/refcheck
"$tmp/refcheck" -selftest -trace-out "$tmp/selftest-trace.json" > /dev/null
grep -q '"ph":"X"' "$tmp/selftest-trace.json" || {
    echo "verify: selftest trace has no complete events" >&2
    exit 1
}
