#!/bin/sh
# verify.sh — the tier-1 gate: format check, vet, build, and the full test
# suite, then the suite again under the race detector (the pipeline is
# parallel by default, so a data race is a correctness bug, not a flake).
# Run before every commit; CI runs the same commands.
set -e
cd "$(dirname "$0")/.."

unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./...
