#!/bin/sh
# verify.sh — the tier-1 gate: format check, vet, build, the full test
# suite, then the suite again under the race detector (the pipeline is
# parallel by default, so a data race is a correctness bug, not a flake),
# and finally the released-binary selftest with tracing enabled (the golden
# artifacts must hold with observability on, and the Chrome trace export
# must produce a loadable event stream).
#
# The test suite includes the difftest differential matrix, which runs the
# tiered cache with the in-memory L1 tier enabled (the default): every
# {workers} × {no cache, cold, L1-warm, disk-warm, one-file-invalidated}
# configuration must render byte-identically. The binary gate below
# re-checks the cold/warm disk path end to end across two processes, and the
# refcheckd gate proves the analysis server serves CLI-identical bytes over
# HTTP and drains cleanly on SIGTERM.
# Run before every commit; CI runs the same commands.
set -e
cd "$(dirname "$0")/.."

unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./...

# End-to-end observability gate: the built binary must reproduce the blessed
# golden artifacts byte-for-byte while a full trace is being recorded, and
# the exported trace must be non-trivial Chrome trace-event JSON.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/refcheck" ./cmd/refcheck
"$tmp/refcheck" -selftest -trace-out "$tmp/selftest-trace.json" > /dev/null
grep -q '"ph":"X"' "$tmp/selftest-trace.json" || {
    echo "verify: selftest trace has no complete events" >&2
    exit 1
}

# Tiered-cache binary gate: an uncached demo run, a cold cached run, and a
# warm re-run in a fresh process (served from the batched disk packs into an
# empty L1) must produce byte-identical reports.
"$tmp/refcheck" -demo > "$tmp/uncached.txt"
"$tmp/refcheck" -demo -cache "$tmp/cache" > "$tmp/cold.txt"
"$tmp/refcheck" -demo -cache "$tmp/cache" > "$tmp/warm.txt"
cmp -s "$tmp/uncached.txt" "$tmp/cold.txt" || {
    echo "verify: cold cached demo run differs from uncached run" >&2
    exit 1
}
cmp -s "$tmp/uncached.txt" "$tmp/warm.txt" || {
    echo "verify: warm cached demo run differs from uncached run" >&2
    exit 1
}

# refcheckd serving gate: boot the daemon on a random port, serve one demo
# analysis over HTTP, require the served bytes to equal the CLI's stdout,
# then deliver SIGTERM and require a clean exit-0 drain (in-flight work
# finished, disk tier flushed).
go build -o "$tmp/refcheckd" ./cmd/refcheckd
"$tmp/refcheckd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -cache "$tmp/dcache" 2> "$tmp/refcheckd.log" &
DPID=$!
i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "verify: refcheckd did not publish an address" >&2
        cat "$tmp/refcheckd.log" >&2
        kill "$DPID" 2> /dev/null || true
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$tmp/addr")"
"$tmp/refcheckd" -post "http://$ADDR/v1/analyze" -demo \
    > "$tmp/served.txt" 2> /dev/null
cmp -s "$tmp/uncached.txt" "$tmp/served.txt" || {
    echo "verify: served demo run differs from refcheck CLI output" >&2
    kill "$DPID" 2> /dev/null || true
    exit 1
}
kill -TERM "$DPID"
drain_status=0
wait "$DPID" || drain_status=$?
if [ "$drain_status" -ne 0 ]; then
    echo "verify: refcheckd SIGTERM drain exited $drain_status" >&2
    cat "$tmp/refcheckd.log" >&2
    exit 1
fi

# Multi-process manager gate: refcheck-manager must render the demo corpus
# byte-identically to the single-process CLI at several shard counts, and
# again with fault injection crashing one worker mid-shard (the manager
# re-queues the lost work onto the survivors).
go build -o "$tmp/refcheck-manager" ./cmd/refcheck-manager
for n in 1 3; do
    "$tmp/refcheck-manager" -shards "$n" -demo > "$tmp/mgr-$n.txt"
    cmp -s "$tmp/uncached.txt" "$tmp/mgr-$n.txt" || {
        echo "verify: refcheck-manager -shards $n differs from refcheck -demo" >&2
        exit 1
    }
done
"$tmp/refcheck-manager" -shards 3 -kill-worker-after 1 -demo > "$tmp/mgr-kill.txt"
cmp -s "$tmp/uncached.txt" "$tmp/mgr-kill.txt" || {
    echo "verify: refcheck-manager with a crashed worker differs from refcheck -demo" >&2
    exit 1
}

# Manager front-end cache gate: with -cache, the workers share the tiered
# cache's per-file front-end entries; a second run over the same corpus must
# stay byte-identical to the uncached reference.
"$tmp/refcheck-manager" -shards 3 -cache "$tmp/mcache" -demo > "$tmp/mgr-cold.txt"
"$tmp/refcheck-manager" -shards 3 -cache "$tmp/mcache" -demo > "$tmp/mgr-warm.txt"
for f in mgr-cold mgr-warm; do
    cmp -s "$tmp/uncached.txt" "$tmp/$f.txt" || {
        echo "verify: refcheck-manager -cache ($f) differs from refcheck -demo" >&2
        exit 1
    }
done

# Watch-mode gate: refgen a tree, take a cold reference run, then start
# `refcheck -watch` with a warm cache and a 2-run budget, edit one file
# between runs (EOF comment append — shifts no report lines), and require
# the incremental re-run's report to be byte-identical to a cold run over
# the edited tree.
go build -o "$tmp/refgen" ./cmd/refgen
"$tmp/refgen" -out "$tmp/wtree" > /dev/null
"$tmp/refcheck" "$tmp/wtree" > "$tmp/watch-ref.txt"
"$tmp/refcheck" -watch -watch-interval 100ms -watch-runs 2 \
    -watch-out "$tmp/watch-out.txt" -cache "$tmp/wcache" \
    "$tmp/wtree" 2> "$tmp/watch.log" &
WPID=$!
i=0
while ! cmp -s "$tmp/watch-ref.txt" "$tmp/watch-out.txt" 2> /dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "verify: watch mode never produced the initial report" >&2
        cat "$tmp/watch.log" >&2
        kill "$WPID" 2> /dev/null || true
        exit 1
    fi
    sleep 0.1
done
edit_file="$(find "$tmp/wtree" -name '*.c' | sort | head -1)"
printf '/* verify watch edit */\n' >> "$edit_file"
watch_status=0
wait "$WPID" || watch_status=$?
if [ "$watch_status" -ne 0 ]; then
    echo "verify: refcheck -watch exited $watch_status" >&2
    cat "$tmp/watch.log" >&2
    exit 1
fi
"$tmp/refcheck" "$tmp/wtree" > "$tmp/watch-cold.txt"
cmp -s "$tmp/watch-cold.txt" "$tmp/watch-out.txt" || {
    echo "verify: incremental watch report differs from cold run over the edited tree" >&2
    cat "$tmp/watch.log" >&2
    exit 1
}
if grep 'watch: run 2 ' "$tmp/watch.log" | grep -q 'front end: 0 hits'; then
    echo "verify: watch re-run had no front-end cache hits" >&2
    cat "$tmp/watch.log" >&2
    exit 1
fi
