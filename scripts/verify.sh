#!/bin/sh
# verify.sh — the tier-1 gate: format check, vet, build, the full test
# suite, then the suite again under the race detector (the pipeline is
# parallel by default, so a data race is a correctness bug, not a flake),
# and finally the released-binary selftest with tracing enabled (the golden
# artifacts must hold with observability on, and the Chrome trace export
# must produce a loadable event stream).
#
# The test suite includes the difftest differential matrix, which runs the
# tiered cache with the in-memory L1 tier enabled (the default): every
# {workers} × {no cache, cold, L1-warm, disk-warm, one-file-invalidated}
# configuration must render byte-identically. The binary gate below
# re-checks the cold/warm disk path end to end across two processes.
# Run before every commit; CI runs the same commands.
set -e
cd "$(dirname "$0")/.."

unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./...

# End-to-end observability gate: the built binary must reproduce the blessed
# golden artifacts byte-for-byte while a full trace is being recorded, and
# the exported trace must be non-trivial Chrome trace-event JSON.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/refcheck" ./cmd/refcheck
"$tmp/refcheck" -selftest -trace-out "$tmp/selftest-trace.json" > /dev/null
grep -q '"ph":"X"' "$tmp/selftest-trace.json" || {
    echo "verify: selftest trace has no complete events" >&2
    exit 1
}

# Tiered-cache binary gate: an uncached demo run, a cold cached run, and a
# warm re-run in a fresh process (served from the batched disk packs into an
# empty L1) must produce byte-identical reports.
"$tmp/refcheck" -demo > "$tmp/uncached.txt"
"$tmp/refcheck" -demo -cache "$tmp/cache" > "$tmp/cold.txt"
"$tmp/refcheck" -demo -cache "$tmp/cache" > "$tmp/warm.txt"
cmp -s "$tmp/uncached.txt" "$tmp/cold.txt" || {
    echo "verify: cold cached demo run differs from uncached run" >&2
    exit 1
}
cmp -s "$tmp/uncached.txt" "$tmp/warm.txt" || {
    echo "verify: warm cached demo run differs from uncached run" >&2
    exit 1
}
