#!/bin/sh
# difftest.sh — the correctness-tooling gate: differential/metamorphic tests,
# the golden ground-truth regression gate, a fuzz smoke pass over all four
# native fuzz targets, and a refresh of the committed quality ledger.
#
# Usage: scripts/difftest.sh [fuzztime]
#   fuzztime  per-target -fuzztime for the smoke pass (default 10s; use 60s+
#             before a release, 0 to skip fuzzing entirely)
#
# Rebless intentional checker-behaviour changes first with:
#   go test ./internal/difftest -run TestGoldenGate -update
set -e
cd "$(dirname "$0")/.."

FUZZTIME="${1:-10s}"

echo "== differential / metamorphic / golden gate =="
go test ./internal/difftest -count=1

if [ "$FUZZTIME" != "0" ]; then
    for target in FuzzLex FuzzPreprocess FuzzParse FuzzPipeline; do
        echo "== fuzz smoke: $target ($FUZZTIME) =="
        go test ./internal/difftest -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME"
    done
fi

echo "== quality ledger =="
go run ./cmd/refcheck -selftest -json > BENCH_quality.json
echo "wrote BENCH_quality.json"
