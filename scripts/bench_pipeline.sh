#!/bin/sh
# bench_pipeline.sh — run the parallel-pipeline benchmark sweep, the
# tiered-cache sweep (cold / disk-warm / l1-warm / concurrent-dedup), the
# observability on/off pair (the tracing tax), the checker-phase timing
# (facts-cold vs facts-warm on a prebuilt unit), the refcheckd serving
# path (warm reqs/s over a real HTTP round trip), the multi-process
# manager sweep (worker subprocesses at 1/2/4 shards), and the large-corpus
# pipeline (a Scale-6 refgen-shaped tree) and emit BENCH_pipeline.json so
# successive PRs can track the perf trajectory.
#
# The BenchmarkPipelineLarge row carries peak_heap_mb — the sampled peak of
# HeapInuse during the run — alongside the usual bytes/allocs per op. It is
# the streaming front-end's budget: peak memory must track per-TU working
# set plus retained ASTs, not whole-corpus token streams, so watch this
# number (and allocs_per_op) when touching cpg front-end ownership.
#
# Usage:
#   scripts/bench_pipeline.sh [output.json]
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 5x)
#
# When the output file already exists, the previous run's numbers are kept
# and a per-row delta table (ns/op and allocs/op) is printed after the new
# file is written. Growth beyond 10% in either column prints a WARNING line
# so a perf regression is loud in CI logs; deltas within the threshold are
# informational. Single-run numbers on a shared box are noisy — treat a
# warning as "re-run and look", not proof. The exit status is unaffected.
#
# The JSON shape is stable:
#   {"benchtime":"5x",
#    "results":[{"benchmark":"BenchmarkPipelineParallel","name":"workers=1",
#                "iters":5,"ns_per_op":1.6e8,"mb_per_s":1.0,
#                "bytes_per_op":9.0e7,"allocs_per_op":280000,"reports":357},
#               {"benchmark":"BenchmarkPipelineCache","name":"warm",
#                "iters":5,"ns_per_op":7.8e6,"unit_hit_rate":1.0,...},
#               {"benchmark":"BenchmarkPipelineObs","name":"on",
#                "iters":5,"ns_per_op":1.7e8,"reports":357,...},
#               {"benchmark":"BenchmarkCheckerPhase","name":"facts-warm",
#                "iters":5,"ns_per_op":1.1e7,"reports":357,...}, ...]}
set -e
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pipeline.json}"
BENCHTIME="${BENCHTIME:-5x}"
RAW="$(mktemp)"
PREV="$(mktemp)"
trap 'rm -f "$RAW" "$PREV"' EXIT

# Keep the previous results (if any) for the delta report below.
if [ -f "$OUT" ]; then
    cp "$OUT" "$PREV"
else
    : > "$PREV"
fi

go test . -run '^$' -bench '^(BenchmarkPipelineParallel|BenchmarkPipelineCache|BenchmarkPipelineObs|BenchmarkCheckerPhase|BenchmarkServeHTTP|BenchmarkManagerShards|BenchmarkPipelineLarge)$' \
    -benchtime "$BENCHTIME" -benchmem | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
BEGIN { n = 0 }
/^Benchmark(PipelineParallel|PipelineCache|PipelineObs|CheckerPhase|ServeHTTP|ManagerShards)\// ||
/^BenchmarkPipelineLarge([ \t]|-[0-9]+[ \t])/ {
    bench = $1
    sub(/\/.*$/, "", bench)
    sub(/-[0-9]+$/, "", bench)         # strip the GOMAXPROCS suffix
    name = $1
    sub(/^Benchmark[A-Za-z]+\//, "", name)
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    if (name == $1 || name == bench)   # no sub-benchmark: label the config
        name = "scale=6"
    benches[n] = bench
    names[n] = name
    iters[n] = $2
    ns[n] = $3
    mbs[n] = ""; reports[n] = ""; bop[n] = ""; aop[n] = ""; hit[n] = ""; dedup[n] = ""; rps[n] = ""; peak[n] = ""
    for (i = 4; i < NF; i++) {
        if ($(i + 1) == "MB/s")                mbs[n] = $i
        if ($(i + 1) == "reports")             reports[n] = $i
        if ($(i + 1) == "B/op")                bop[n] = $i
        if ($(i + 1) == "allocs/op")           aop[n] = $i
        if ($(i + 1) == "unit_hit_rate")       hit[n] = $i
        if ($(i + 1) == "computes_per_4_reqs") dedup[n] = $i
        if ($(i + 1) == "reqs/s")              rps[n] = $i
        if ($(i + 1) == "peak_heap_mb")        peak[n] = $i
    }
    n++
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"results\": [\n", benchtime
    for (i = 0; i < n; i++) {
        printf "    {\"benchmark\": \"%s\", \"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", \
            benches[i], names[i], iters[i], ns[i]
        if (mbs[i] != "")     printf ", \"mb_per_s\": %s", mbs[i]
        if (bop[i] != "")     printf ", \"bytes_per_op\": %s", bop[i]
        if (aop[i] != "")     printf ", \"allocs_per_op\": %s", aop[i]
        if (hit[i] != "")     printf ", \"unit_hit_rate\": %s", hit[i]
        if (dedup[i] != "")   printf ", \"computes_per_4_reqs\": %s", dedup[i]
        if (rps[i] != "")     printf ", \"reqs_per_sec\": %s", rps[i]
        if (peak[i] != "")    printf ", \"peak_heap_mb\": %s", peak[i]
        if (reports[i] != "") printf ", \"reports\": %s", reports[i]
        printf "}%s\n", (i < n - 1) ? "," : ""
    }
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"

# Delta report: compare each (benchmark, name) row against the previous
# file. The JSON writer above emits one result object per line, so a line
# scanner is enough — no JSON parser needed.
if [ -s "$PREV" ]; then
    awk '
    function field(line, key,   v) {
        if (match(line, "\"" key "\": [0-9.e+-]+") == 0) return ""
        v = substr(line, RSTART, RLENGTH)
        sub(/^.*: /, "", v)
        return v
    }
    function rowkey(line,   b, n) {
        if (match(line, /"benchmark": "[^"]*"/) == 0) return ""
        b = substr(line, RSTART + 14, RLENGTH - 15)
        if (match(line, /"name": "[^"]*"/) == 0) return ""
        n = substr(line, RSTART + 9, RLENGTH - 10)
        return b "/" n
    }
    function delta(key, col, old, cur,   pct, tag) {
        if (old == "" || cur == "" || old + 0 == 0) return
        pct = (cur - old) * 100.0 / old
        tag = ""
        if (pct > 10) {
            tag = "  << WARNING: >10% regression"
            warned++
        }
        printf "  %-42s %-10s %14.0f -> %14.0f  (%+.1f%%)%s\n", \
            key, col, old, cur, pct, tag
    }
    NR == FNR {
        k = rowkey($0)
        if (k != "") { ons[k] = field($0, "ns_per_op"); oap[k] = field($0, "allocs_per_op") }
        next
    }
    {
        k = rowkey($0)
        if (k == "" || !(k in ons)) next
        if (!hdr) { print "delta vs previous run:"; hdr = 1 }
        delta(k, "ns/op", ons[k], field($0, "ns_per_op"))
        delta(k, "allocs/op", oap[k], field($0, "allocs_per_op"))
    }
    END {
        if (warned) printf "%d metric(s) regressed by more than 10%% — single runs are noisy; re-run before concluding.\n", warned
    }' "$PREV" "$OUT"
fi
