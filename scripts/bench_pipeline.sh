#!/bin/sh
# bench_pipeline.sh — run the parallel-pipeline benchmark sweep, the
# incremental-cache cold/warm pair, the observability on/off pair (the
# tracing tax), and the checker-phase timing (facts-cold vs facts-warm on a
# prebuilt unit) and emit BENCH_pipeline.json so successive PRs can track
# the perf trajectory.
#
# Usage:
#   scripts/bench_pipeline.sh [output.json]
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 5x)
#
# The JSON shape is stable:
#   {"benchtime":"5x",
#    "results":[{"benchmark":"BenchmarkPipelineParallel","name":"workers=1",
#                "iters":5,"ns_per_op":1.6e8,"mb_per_s":1.0,
#                "bytes_per_op":9.0e7,"allocs_per_op":280000,"reports":357},
#               {"benchmark":"BenchmarkPipelineCache","name":"warm",
#                "iters":5,"ns_per_op":7.8e6,"unit_hit_rate":1.0,...},
#               {"benchmark":"BenchmarkPipelineObs","name":"on",
#                "iters":5,"ns_per_op":1.7e8,"reports":357,...},
#               {"benchmark":"BenchmarkCheckerPhase","name":"facts-warm",
#                "iters":5,"ns_per_op":1.1e7,"reports":357,...}, ...]}
set -e
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pipeline.json}"
BENCHTIME="${BENCHTIME:-5x}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test . -run '^$' -bench '^(BenchmarkPipelineParallel|BenchmarkPipelineCache|BenchmarkPipelineObs|BenchmarkCheckerPhase)$' \
    -benchtime "$BENCHTIME" -benchmem | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
BEGIN { n = 0 }
/^Benchmark(PipelineParallel|PipelineCache|PipelineObs|CheckerPhase)\// {
    bench = $1
    sub(/\/.*$/, "", bench)
    name = $1
    sub(/^Benchmark[A-Za-z]+\//, "", name)
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    benches[n] = bench
    names[n] = name
    iters[n] = $2
    ns[n] = $3
    mbs[n] = ""; reports[n] = ""; bop[n] = ""; aop[n] = ""; hit[n] = ""
    for (i = 4; i < NF; i++) {
        if ($(i + 1) == "MB/s")          mbs[n] = $i
        if ($(i + 1) == "reports")       reports[n] = $i
        if ($(i + 1) == "B/op")          bop[n] = $i
        if ($(i + 1) == "allocs/op")     aop[n] = $i
        if ($(i + 1) == "unit_hit_rate") hit[n] = $i
    }
    n++
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"results\": [\n", benchtime
    for (i = 0; i < n; i++) {
        printf "    {\"benchmark\": \"%s\", \"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", \
            benches[i], names[i], iters[i], ns[i]
        if (mbs[i] != "")     printf ", \"mb_per_s\": %s", mbs[i]
        if (bop[i] != "")     printf ", \"bytes_per_op\": %s", bop[i]
        if (aop[i] != "")     printf ", \"allocs_per_op\": %s", aop[i]
        if (hit[i] != "")     printf ", \"unit_hit_rate\": %s", hit[i]
        if (reports[i] != "") printf ", \"reports\": %s", reports[i]
        printf "}%s\n", (i < n - 1) ? "," : ""
    }
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
