#!/bin/sh
# bench_pipeline.sh — run the parallel-pipeline benchmark sweep and emit
# BENCH_pipeline.json so successive PRs can track the perf trajectory.
#
# Usage:
#   scripts/bench_pipeline.sh [output.json]
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 5x)
#
# The JSON shape is stable:
#   {"benchmark":"BenchmarkPipelineParallel","benchtime":"5x",
#    "results":[{"name":"workers=1","iters":5,"ns_per_op":1.6e8,
#                "mb_per_s":1.0,"reports":357}, ...]}
set -e
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pipeline.json}"
BENCHTIME="${BENCHTIME:-5x}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test . -run '^$' -bench '^BenchmarkPipelineParallel$' -benchtime "$BENCHTIME" | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
BEGIN { n = 0 }
/^BenchmarkPipelineParallel\// {
    name = $1
    sub(/^BenchmarkPipelineParallel\//, "", name)
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    iters[n] = $2
    ns[n] = $3
    mbs[n] = ""
    reports[n] = ""
    for (i = 4; i < NF; i++) {
        if ($(i + 1) == "MB/s")    mbs[n] = $i
        if ($(i + 1) == "reports") reports[n] = $i
    }
    names[n] = name
    n++
}
END {
    printf "{\n  \"benchmark\": \"BenchmarkPipelineParallel\",\n"
    printf "  \"benchtime\": \"%s\",\n  \"results\": [\n", benchtime
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", names[i], iters[i], ns[i]
        if (mbs[i] != "")     printf ", \"mb_per_s\": %s", mbs[i]
        if (reports[i] != "") printf ", \"reports\": %s", reports[i]
        printf "}%s\n", (i < n - 1) ? "," : ""
    }
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
